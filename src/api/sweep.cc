#include "gsmb/sweep.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "api/backends.h"
#include "api/json.h"
#include "api/spec_json.h"
#include "gsmb/log.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

template <typename T>
json::Array NamesArray(const std::vector<T>& values,
                       std::string (*name_of)(T)) {
  json::Array out;
  out.reserve(values.size());
  for (const T& value : values) out.emplace_back(name_of(value));
  return out;
}

std::string PruningAxisName(PruningKind kind) { return PruningShortName(kind); }
std::string ClassifierAxisName(ClassifierKind kind) {
  return std::string(ClassifierShortName(kind));
}

/// Parses one string-valued axis array through a Parse* helper.
template <typename T, typename ParseFn>
Status ParseNameAxis(const json::Value& value, const char* path, ParseFn parse,
                     std::vector<T>* out) {
  if (!value.is_array()) {
    return Status::InvalidArgument(std::string(path) +
                                   ": expected an array of strings");
  }
  out->clear();
  for (const json::Value& item : value.AsArray()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(std::string(path) +
                                     ": expected an array of strings");
    }
    Result<T> parsed = parse(item.AsString());
    if (!parsed.ok()) {
      return Status::InvalidArgument(std::string(path) + ": " +
                                     parsed.status().message());
    }
    out->push_back(*parsed);
  }
  return Status::Ok();
}

template <typename T>
Status ParseCountAxis(const json::Value& value, const char* path,
                      std::vector<T>* out) {
  if (!value.is_array()) {
    return Status::InvalidArgument(
        std::string(path) + ": expected an array of non-negative integers");
  }
  out->clear();
  for (const json::Value& item : value.AsArray()) {
    if (!item.is_u64()) {
      return Status::InvalidArgument(
          std::string(path) + ": expected an array of non-negative integers");
    }
    out->push_back(static_cast<T>(item.AsU64()));
  }
  return Status::Ok();
}

/// Rejects an axis with repeated values: duplicate variants would collide
/// on labels (and retained_dir file names) while adding no information.
template <typename T, typename KeyFn>
Status RejectDuplicates(const std::vector<T>& values, const char* path,
                        KeyFn key_of) {
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (key_of(values[i]) == key_of(values[j])) {
        return Status::InvalidArgument(std::string(path) +
                                       ": duplicate value '" +
                                       key_of(values[i]) + "'");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string SweepSpec::ToJson(int indent) const {
  json::Object root;
  root["version"] = json::Value(version);
  root["base"] = api::JobSpecToJsonValue(base);

  json::Object axes_obj;
  if (!axes.schemes.empty()) {
    json::Array schemes;
    for (const std::string& scheme : axes.schemes) {
      schemes.emplace_back(scheme);
    }
    axes_obj["scheme"] = json::Value(std::move(schemes));
  }
  if (!axes.pruning.empty()) {
    axes_obj["pruning"] = json::Value(NamesArray(axes.pruning,
                                                 &PruningAxisName));
  }
  if (!axes.features.empty()) {
    json::Array features;
    for (const FeatureSet& set : axes.features) {
      features.emplace_back(FeatureSetSpecName(set));
    }
    axes_obj["features"] = json::Value(std::move(features));
  }
  if (!axes.classifiers.empty()) {
    axes_obj["classifier"] =
        json::Value(NamesArray(axes.classifiers, &ClassifierAxisName));
  }
  if (!axes.labels_per_class.empty()) {
    json::Array labels;
    for (size_t value : axes.labels_per_class) labels.emplace_back(value);
    axes_obj["labels_per_class"] = json::Value(std::move(labels));
  }
  if (!axes.seeds.empty()) {
    json::Array seeds;
    for (uint64_t value : axes.seeds) seeds.emplace_back(value);
    axes_obj["seeds"] = json::Value(std::move(seeds));
  }
  root["axes"] = json::Value(std::move(axes_obj));

  if (!retained_dir.empty()) {
    root["retained_dir"] = json::Value(retained_dir);
  }
  return json::Dump(json::Value(std::move(root)), indent);
}

Result<SweepSpec> SweepSpec::FromJson(const std::string& text) {
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument(
        "a sweep spec must be a JSON object, got " +
        std::string(json::Value::KindName(parsed->kind())));
  }

  SweepSpec sweep;
  const json::Object& root = parsed->AsObject();

  // Version first, same contract as JobSpec.
  const json::Value* version = root.Find("version");
  if (version == nullptr) {
    return Status::InvalidArgument(
        "sweep.version is required (current version: " +
        std::to_string(kSweepSpecVersion) + ")");
  }
  if (!version->is_u64()) {
    return Status::InvalidArgument(
        "sweep.version: expected a non-negative integer");
  }
  sweep.version = version->AsU64();
  if (sweep.version != kSweepSpecVersion) {
    return Status::InvalidArgument(
        "unsupported sweep version " + std::to_string(sweep.version) +
        " (this build reads version " + std::to_string(kSweepSpecVersion) +
        ")");
  }

  for (const auto& [key, value] : root.members()) {
    if (key == "version") continue;
    if (key == "base") {
      Result<JobSpec> base =
          api::JobSpecFromJsonValue(value, JobSpec(), "sweep.base");
      if (!base.ok()) return base.status();
      sweep.base = *base;
    } else if (key == "axes") {
      if (!value.is_object()) {
        return Status::InvalidArgument("sweep.axes: expected an object");
      }
      for (const auto& [axis, axis_value] : value.AsObject().members()) {
        Status parsed_axis = Status::Ok();
        if (axis == "scheme") {
          parsed_axis = ParseNameAxis(axis_value, "sweep.axes.scheme",
                                      ParseBlockingScheme,
                                      &sweep.axes.schemes);
        } else if (axis == "pruning") {
          parsed_axis = ParseNameAxis(axis_value, "sweep.axes.pruning",
                                      ParsePruningName, &sweep.axes.pruning);
        } else if (axis == "features") {
          parsed_axis = ParseNameAxis(axis_value, "sweep.axes.features",
                                      ParseFeatureSetName,
                                      &sweep.axes.features);
        } else if (axis == "classifier") {
          parsed_axis = ParseNameAxis(axis_value, "sweep.axes.classifier",
                                      ParseClassifierName,
                                      &sweep.axes.classifiers);
        } else if (axis == "labels_per_class") {
          parsed_axis = ParseCountAxis(axis_value,
                                       "sweep.axes.labels_per_class",
                                       &sweep.axes.labels_per_class);
        } else if (axis == "seeds") {
          parsed_axis =
              ParseCountAxis(axis_value, "sweep.axes.seeds", &sweep.axes.seeds);
        } else {
          return Status::InvalidArgument(
              "unknown key '" + axis +
              "' in sweep.axes (the spec rejects unrecognized settings "
              "rather than ignore them)");
        }
        if (!parsed_axis.ok()) return parsed_axis;
      }
    } else if (key == "retained_dir") {
      if (!value.is_string()) {
        return Status::InvalidArgument("sweep.retained_dir: expected a string");
      }
      sweep.retained_dir = value.AsString();
    } else {
      return Status::InvalidArgument(
          "unknown key '" + key +
          "' in sweep (the spec rejects unrecognized settings rather than "
          "ignore them)");
    }
  }
  return sweep;
}

Result<SweepSpec> SweepSpec::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open sweep file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<SweepSpec> sweep = FromJson(buffer.str());
  if (!sweep.ok()) {
    return Status(sweep.status().code(),
                  path + ": " + sweep.status().message());
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// Validation / expansion
// ---------------------------------------------------------------------------

Status SweepSpec::Validate() const {
  if (version != kSweepSpecVersion) {
    return Status::InvalidArgument("unsupported sweep version " +
                                   std::to_string(version));
  }
  Status base_valid = base.Validate();
  if (!base_valid.ok()) {
    return Status(base_valid.code(),
                  "sweep.base: " + base_valid.message());
  }
  if (!base.output.retained_csv.empty()) {
    return Status::InvalidArgument(
        "sweep.base.output.retained_csv must be empty: one path cannot "
        "hold a grid of results (use retained_dir for per-variant CSVs)");
  }
  Status unique = RejectDuplicates(axes.schemes, "sweep.axes.scheme",
                                   [](const std::string& s) { return s; });
  if (!unique.ok()) return unique;
  // The scheme axis changes the preparation itself, so each value must
  // yield a spec this build can prepare: registry membership AND the
  // base's per-scheme params, checked the same way a plain Run would.
  for (const std::string& scheme : axes.schemes) {
    JobSpec variant = base;
    variant.blocking.scheme = scheme;
    Status scheme_valid = variant.Validate();
    if (!scheme_valid.ok()) {
      return Status(scheme_valid.code(), "sweep.axes.scheme '" + scheme +
                                             "': " + scheme_valid.message());
    }
  }
  unique = RejectDuplicates(axes.pruning, "sweep.axes.pruning",
                            [](PruningKind k) {
                              return PruningShortName(k);
                            });
  if (!unique.ok()) return unique;
  unique = RejectDuplicates(axes.features, "sweep.axes.features",
                            [](const FeatureSet& s) {
                              return FeatureSetSpecName(s);
                            });
  if (!unique.ok()) return unique;
  unique = RejectDuplicates(axes.classifiers, "sweep.axes.classifier",
                            [](ClassifierKind k) {
                              return std::string(ClassifierShortName(k));
                            });
  if (!unique.ok()) return unique;
  unique = RejectDuplicates(axes.labels_per_class,
                            "sweep.axes.labels_per_class",
                            [](size_t v) { return std::to_string(v); });
  if (!unique.ok()) return unique;
  unique = RejectDuplicates(axes.seeds, "sweep.axes.seeds",
                            [](uint64_t v) { return std::to_string(v); });
  if (!unique.ok()) return unique;
  for (size_t labels : axes.labels_per_class) {
    if (labels < 1) {
      return Status::InvalidArgument(
          "sweep.axes.labels_per_class values must be >= 1");
    }
  }
  return Status::Ok();
}

size_t SweepSpec::GridSize() const {
  auto dim = [](size_t n) { return n == 0 ? size_t{1} : n; };
  return dim(axes.schemes.size()) * dim(axes.pruning.size()) *
         dim(axes.features.size()) * dim(axes.classifiers.size()) *
         dim(axes.labels_per_class.size()) * dim(axes.seeds.size());
}

std::vector<JobSpec> SweepSpec::Expand() const {
  // An empty axis contributes the base's single value, so every loop below
  // runs at least once and the expansion order is exactly the documented
  // scheme -> pruning -> features -> classifier -> labels -> seeds nesting.
  // Scheme is outermost so variants sharing a preparation are contiguous.
  const std::vector<std::string> schemes =
      axes.schemes.empty() ? std::vector<std::string>{base.blocking.scheme}
                           : axes.schemes;
  const std::vector<PruningKind> prunings =
      axes.pruning.empty() ? std::vector<PruningKind>{base.pruning.kind}
                           : axes.pruning;
  const std::vector<FeatureSet> features =
      axes.features.empty() ? std::vector<FeatureSet>{base.features}
                            : axes.features;
  const std::vector<ClassifierKind> classifiers =
      axes.classifiers.empty() ? std::vector<ClassifierKind>{base.classifier}
                               : axes.classifiers;
  const std::vector<size_t> labels =
      axes.labels_per_class.empty()
          ? std::vector<size_t>{base.training.labels_per_class}
          : axes.labels_per_class;
  const std::vector<uint64_t> seeds =
      axes.seeds.empty() ? std::vector<uint64_t>{base.training.seed}
                         : axes.seeds;

  std::vector<JobSpec> variants;
  variants.reserve(GridSize());
  for (const std::string& scheme : schemes) {
    for (PruningKind pruning : prunings) {
      for (const FeatureSet& feature_set : features) {
        for (ClassifierKind classifier : classifiers) {
          for (size_t labels_per_class : labels) {
            for (uint64_t seed : seeds) {
              JobSpec variant = base;
              variant.blocking.scheme = scheme;
              variant.pruning.kind = pruning;
              variant.features = feature_set;
              variant.classifier = classifier;
              variant.training.labels_per_class = labels_per_class;
              variant.training.seed = seed;
              variants.push_back(std::move(variant));
            }
          }
        }
      }
    }
  }
  return variants;
}

bool SweepSpec::operator==(const SweepSpec& other) const {
  return version == other.version && base == other.base &&
         axes.schemes == other.axes.schemes &&
         axes.pruning == other.axes.pruning &&
         axes.features == other.axes.features &&
         axes.classifiers == other.axes.classifiers &&
         axes.labels_per_class == other.axes.labels_per_class &&
         axes.seeds == other.axes.seeds &&
         retained_dir == other.retained_dir;
}

std::string SweepVariantLabel(const JobSpec& variant) {
  std::string features = FeatureSetSpecName(variant.features);
  // A custom feature list serializes with commas; '+' keeps the label one
  // filesystem-safe token. Scheme names are already filesystem-safe
  // (lowercase words joined by '-').
  std::replace(features.begin(), features.end(), ',', '+');
  return variant.blocking.scheme + "_" +
         PruningShortName(variant.pruning.kind) + "_" + features + "_" +
         ClassifierShortName(variant.classifier) + "_l" +
         std::to_string(variant.training.labels_per_class) + "_s" +
         std::to_string(variant.training.seed);
}

// ---------------------------------------------------------------------------
// Engine::RunSweep
// ---------------------------------------------------------------------------

Result<SweepResult> Engine::RunSweep(const SweepSpec& sweep) const {
  Status valid = sweep.Validate();
  if (!valid.ok()) return valid;

  Stopwatch total_watch;

  std::vector<JobSpec> variants = sweep.Expand();

  // One preparation per distinct dataset+blocking section — without a
  // scheme axis that is the single shared base preparation. The handles
  // live in this map for the whole sweep, so the cache's LRU can never
  // evict (and force a re-preparation of) a scheme mid-sweep.
  const PrepareCacheStats before = prepare_cache_stats();
  std::vector<std::string> variant_keys;
  variant_keys.reserve(variants.size());
  std::map<std::string, PreparedHandle> handles;
  double prepare_seconds = 0.0;
  for (const JobSpec& variant : variants) {
    std::string key = PrepareCacheKey(variant);
    if (handles.find(key) == handles.end()) {
      Result<PreparedHandle> prepared = Prepare(variant);
      if (!prepared.ok()) {
        return Status(prepared.status().code(),
                      "sweep: preparing scheme '" + variant.blocking.scheme +
                          "': " + prepared.status().message());
      }
      prepare_seconds += (*prepared)->prepare_seconds;
      handles.emplace(key, *prepared);
    }
    variant_keys.push_back(std::move(key));
  }
  const PrepareCacheStats after = prepare_cache_stats();

  if (!sweep.retained_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(sweep.retained_dir, ec);
    if (ec) {
      return Status::NotFound("cannot create sweep.retained_dir '" +
                              sweep.retained_dir + "': " + ec.message());
    }
  }

  GSMB_LOG_INFO("sweep.start", {"variants", variants.size()},
                {"preparations", handles.size()},
                {"cache_hits", after.hits - before.hits},
                {"cache_misses", after.misses - before.misses});
  SweepResult result;
  result.variants.resize(variants.size());
  result.cache_hits = after.hits - before.hits;
  result.cache_misses = after.misses - before.misses;
  result.prepare_seconds = prepare_seconds;

  // Variants are independent, deterministic jobs; run them in parallel
  // with work stealing: every slot pulls the next unclaimed variant off a
  // shared atomic counter, so a skewed grid (BLAST vs LCP-heavy variants
  // differ >2x in cost) never stalls on a static stripe. Results still
  // land in expansion order regardless of which slot ran which variant.
  const size_t threads = api::ResolvedExecution(sweep.base).num_threads;
  const size_t slots = std::min(std::max<size_t>(threads, 1), variants.size());
  std::atomic<size_t> next_variant{0};
  ParallelFor(slots, slots, [&](size_t slot_begin, size_t slot_end) {
    (void)slot_begin;
    (void)slot_end;
    for (;;) {
      const size_t i = next_variant.fetch_add(1, std::memory_order_relaxed);
      if (i >= variants.size()) break;
      SweepVariant& out = result.variants[i];
      out.spec = std::move(variants[i]);
      out.label = SweepVariantLabel(out.spec);
      if (!sweep.retained_dir.empty()) {
        out.spec.output.retained_csv =
            sweep.retained_dir + "/" + out.label + ".csv";
      }
      Result<JobResult> run = Execute(out.spec, *handles.at(variant_keys[i]));
      if (run.ok()) {
        out.result = std::move(*run);
        out.status = Status::Ok();
        GSMB_LOG_INFO("sweep.variant.done", {"label", out.label},
                      {"retained", out.result.retained_count});
      } else {
        out.status = run.status();
        GSMB_LOG_WARN("sweep.variant.failed", {"label", out.label},
                      {"error", run.status().message()});
      }
    }
  });

  // Merge in expansion order — deterministic however the variants were
  // scheduled above.
  for (const SweepVariant& variant : result.variants) {
    if (variant.status.ok()) {
      result.telemetry.MergeFrom(variant.result.telemetry);
    }
  }
  result.telemetry.counters["prepare.cache.hit"] += result.cache_hits;
  result.telemetry.counters["prepare.cache.miss"] += result.cache_misses;

  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace gsmb
