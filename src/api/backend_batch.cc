// The batch backend: the in-memory pipeline of core/ behind the Executor
// interface. Supports every spec — it is the reference semantics the other
// backends are equivalent to.

#include <utility>

#include "api/backends.h"
#include "util/stopwatch.h"

namespace gsmb::api {

namespace {

class BatchBackend : public Executor {
 public:
  std::string name() const override { return "batch"; }

  Status Supports(const JobSpec&) const override { return Status::Ok(); }

  Result<JobResult> Execute(const JobSpec& spec) const override {
    Result<JobInputs> inputs = LoadJobInputs(spec);
    if (!inputs.ok()) return inputs.status();

    Stopwatch watch;
    BlockCollection blocks = BuildPreprocessedBlocks(spec, *inputs);
    PreparedDataset prep =
        PrepareFromBlocks("job", std::move(blocks), inputs->ground_truth,
                          ResolvedExecution(spec).num_threads);
    return RunBatchOn(spec, *inputs, prep, watch.ElapsedSeconds());
  }
};

}  // namespace

PreparedDataset BatchPrepFromStreaming(StreamingDataset counted,
                                       size_t num_threads) {
  // The counting preparation already built the blocks and the entity
  // index; only the O(|C|) arrays are missing.
  PreparedDataset prep;
  prep.name = counted.name;
  prep.clean_clean = counted.clean_clean;
  prep.ground_truth = std::move(counted.ground_truth);
  prep.blocks = std::move(counted.blocks);
  prep.index = std::move(counted.index);
  prep.stats = counted.stats;
  prep.pairs = GenerateCandidatePairs(*prep.index, num_threads);
  prep.blocking_quality =
      EvaluateBlockingQuality(prep.pairs, prep.ground_truth);
  prep.is_positive.resize(prep.pairs.size());
  for (size_t i = 0; i < prep.pairs.size(); ++i) {
    prep.is_positive[i] =
        prep.ground_truth.IsMatch(prep.pairs[i].left, prep.pairs[i].right)
            ? 1
            : 0;
  }
  return prep;
}

Result<JobResult> RunBatchOn(const JobSpec& spec, const JobInputs& inputs,
                             const PreparedDataset& prep,
                             double blocking_seconds) {
  MetaBlockingConfig config = ConfigFromSpec(spec);
  const bool want_csv = !spec.output.retained_csv.empty();
  config.keep_retained = want_csv || spec.output.keep_retained;

  MetaBlockingResult run = RunMetaBlocking(prep, config);

  JobResult result;
  result.backend = "batch";
  result.metrics = run.metrics;
  result.blocking_quality = prep.blocking_quality;
  result.num_blocks = prep.blocks.size();
  result.num_candidates = prep.pairs.size();
  result.training_size = run.training_size;
  result.model_coefficients = run.model_coefficients;
  result.blocking_seconds = blocking_seconds;
  result.feature_seconds = run.feature_seconds;
  result.train_seconds = run.train_seconds;
  result.classify_seconds = run.classify_seconds;
  result.prune_seconds = run.prune_seconds;
  result.total_seconds = run.total_seconds;
  result.shards_used = 1;

  // Retained indices are ascending, and the candidate order is ascending
  // (left, right) — the same order the streaming sink and a serving cold
  // build emit, which is what makes the CSVs byte-comparable.
  if (want_csv) {
    Result<std::ofstream> csv = OpenRetainedCsv(spec.output.retained_csv);
    if (!csv.ok()) return csv.status();
    for (uint32_t index : run.retained_indices) {
      const CandidatePair& pair = prep.pairs[index];
      AppendRetainedCsvRow(*csv, inputs.ExternalLeftId(pair.left),
                           inputs.ExternalRightId(pair.right));
    }
    Status finished = FinishRetainedCsv(*csv, spec.output.retained_csv);
    if (!finished.ok()) return finished;
    result.retained_csv_rows = run.retained_indices.size();
  }
  if (spec.output.keep_retained) {
    result.retained.reserve(run.retained_indices.size());
    for (uint32_t index : run.retained_indices) {
      const CandidatePair& pair = prep.pairs[index];
      result.retained.push_back({inputs.ExternalLeftId(pair.left),
                                 inputs.ExternalRightId(pair.right)});
    }
  }
  return result;
}

std::unique_ptr<Executor> MakeBatchBackend() {
  return std::make_unique<BatchBackend>();
}

}  // namespace gsmb::api
