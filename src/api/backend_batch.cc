// The batch backend: the in-memory pipeline of core/ behind the Executor
// interface. Supports every spec — it is the reference semantics the other
// backends are equivalent to. Executes against a shared PreparedInputs
// handle, materialising the handle's O(|C|) candidate arrays lazily (at
// most once per handle, however many configurations run against it).

#include <utility>

#include "api/backends.h"
#include "gsmb/digest.h"
#include "gsmb/log.h"

namespace gsmb::api {

namespace {

class BatchBackend : public Executor {
 public:
  std::string name() const override { return "batch"; }

  Status Supports(const JobSpec&) const override { return Status::Ok(); }

  bool AcceptsPrepared() const override { return true; }

  Result<JobResult> ExecutePrepared(
      const JobSpec& spec, const PreparedInputs& prepared) const override {
    return RunBatchOn(spec, prepared);
  }

  Result<JobResult> Execute(const JobSpec& spec) const override {
    Result<PreparedHandle> prepared = BuildPreparedInputs(spec);
    if (!prepared.ok()) return prepared.status();
    return RunBatchOn(spec, **prepared);
  }
};

}  // namespace

Result<JobResult> RunBatchOn(const JobSpec& spec,
                             const PreparedInputs& prepared) {
  const JobInputs& inputs = prepared.inputs;
  const PreparedInputs::BatchArrays& batch =
      prepared.Batch(ResolvedExecution(spec).num_threads);

  MetaBlockingConfig config = ConfigFromSpec(spec);
  const bool want_csv = !spec.output.retained_csv.empty();
  // The retained indices always survive the pipeline now: the provenance
  // digest below folds every retained pair, CSV output or not. The cost is
  // one uint32 per retained pair, dwarfed by the materialised batch arrays.
  config.keep_retained = true;

  PreparedRef ref;
  ref.name = &prepared.stream.name;
  ref.index = prepared.stream.index.get();
  ref.stats = &prepared.stream.stats;
  ref.pairs = &batch.pairs;
  ref.is_positive = &batch.is_positive;
  ref.num_ground_truth = prepared.stream.ground_truth.size();

  MetaBlockingResult run = RunMetaBlocking(ref, config);

  JobResult result;
  result.backend = "batch";
  result.metrics = run.metrics;
  result.blocking_quality = prepared.stream.blocking_quality;
  result.num_blocks = prepared.stream.blocks.size();
  result.num_candidates = batch.pairs.size();
  result.training_size = run.training_size;
  result.model_coefficients = run.model_coefficients;
  // Phase breakdown from the pipeline's telemetry clock; the handle's lazy
  // candidate materialisation is this backend's pair-generation cost
  // (one-off per handle, reported by every run against it).
  obs::PhaseTimings phases = run.phases;
  phases.Add(obs::Phase::kPairs, batch.materialize_seconds);
  ApplyPhaseTimings(phases, prepared.prepare_seconds, &result);
  result.shards_used = 1;

  // Provenance: always computed — with or without keep_retained/CSV — so
  // every run carries the semantic-drift signal reports compare on.
  result.dataset_fingerprint = prepared.dataset_fingerprint;
  result.prepared_digest = prepared.prepared_digest;
  obs::PairSetDigest digest;
  for (uint32_t index : run.retained_indices) {
    const CandidatePair& pair = batch.pairs[index];
    digest.AddPair(inputs.ExternalLeftId(pair.left),
                   inputs.ExternalRightId(pair.right));
  }
  result.retained_digest = digest.Value();
  result.retained_count = digest.count;
  GSMB_LOG_INFO("run.done", {"backend", "batch"},
                {"retained", digest.count},
                {"retained_digest", obs::DigestHex(result.retained_digest)});

  // Retained indices are ascending, and the candidate order is ascending
  // (left, right) — the same order the streaming sink and a serving cold
  // build emit, which is what makes the CSVs byte-comparable.
  if (want_csv) {
    Result<std::ofstream> csv = OpenRetainedCsv(spec.output.retained_csv);
    if (!csv.ok()) return csv.status();
    for (uint32_t index : run.retained_indices) {
      const CandidatePair& pair = batch.pairs[index];
      AppendRetainedCsvRow(*csv, inputs.ExternalLeftId(pair.left),
                           inputs.ExternalRightId(pair.right));
    }
    Status finished = FinishRetainedCsv(*csv, spec.output.retained_csv);
    if (!finished.ok()) return finished;
    result.retained_csv_rows = run.retained_indices.size();
  }
  if (spec.output.keep_retained) {
    result.retained.reserve(run.retained_indices.size());
    for (uint32_t index : run.retained_indices) {
      const CandidatePair& pair = batch.pairs[index];
      result.retained.push_back({inputs.ExternalLeftId(pair.left),
                                 inputs.ExternalRightId(pair.right)});
    }
  }
  return result;
}

std::unique_ptr<Executor> MakeBatchBackend() {
  return std::make_unique<BatchBackend>();
}

}  // namespace gsmb::api
