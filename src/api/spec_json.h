// Value-level JobSpec (de)serialization, shared inside the api layer.
//
// JobSpec::ToJson/FromJson work on whole documents; the sweep spec embeds a
// JobSpec as its "base" member and the prepare cache keys on two of its
// sections, so the object-level hooks live here instead of being re-derived
// from text.

#ifndef GSMB_API_SPEC_JSON_H_
#define GSMB_API_SPEC_JSON_H_

#include <string>

#include "api/json.h"
#include "gsmb/job_spec.h"
#include "gsmb/status.h"

namespace gsmb::api {

/// The canonical spec object ToJson() dumps (current version, every field
/// explicit, members in schema order).
json::Value JobSpecToJsonValue(const JobSpec& spec);

/// The dataset / blocking sections alone — the two sections a preparation
/// is a pure function of (PrepareCacheKey builds on these).
json::Object DatasetSectionJson(const DatasetSpec& dataset);
json::Object BlockingSectionJson(const BlockingSpec& blocking);

/// Parses a spec object over `base`; diagnostics are qualified with `path`
/// ("spec" for a top-level document, "sweep.base" when embedded).
Result<JobSpec> JobSpecFromJsonValue(const json::Value& root,
                                     const JobSpec& base,
                                     const std::string& path);

}  // namespace gsmb::api

#endif  // GSMB_API_SPEC_JSON_H_
