// Internal plumbing shared by the Engine's standard backends.
//
// Each backend's Execute() is: load the spec's inputs -> build the
// preprocessed block collection -> hand both to its pipeline. The load and
// block-build steps are identical across backends (that is what makes
// cross-backend equivalence testable at the API boundary), so they live
// here; the `auto` resolver also calls them directly to count candidates
// once and then feed the SAME blocks to whichever backend it picks.

#ifndef GSMB_API_BACKENDS_H_
#define GSMB_API_BACKENDS_H_

#include <fstream>
#include <memory>
#include <string>

#include "blocking/block_collection.h"
#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/status.h"
#include "stream/streaming_dataset.h"

namespace gsmb::api {

/// The loaded dataset of a job: one or two collections plus ground truth.
struct JobInputs {
  EntityCollection e1;
  EntityCollection e2;  // empty for Dirty ER
  bool dirty = false;
  GroundTruth ground_truth{false};

  const std::string& ExternalLeftId(EntityId id) const {
    return e1[id].external_id();
  }
  const std::string& ExternalRightId(EntityId id) const {
    return dirty ? e1[id].external_id() : e2[id].external_id();
  }
};

/// Loads CSV files or generates the named synthetic dataset. Missing paths
/// and empty parses are NotFound/InvalidArgument with the offending path.
Result<JobInputs> LoadJobInputs(const JobSpec& spec);

/// Builds the spec's blocking scheme over the inputs and applies Block
/// Purging + Block Filtering with the spec's parameters — the exact
/// preprocessing every backend's implied candidate set derives from.
BlockCollection BuildPreprocessedBlocks(const JobSpec& spec,
                                        const JobInputs& inputs);

/// spec.execution.options with threads == 0 resolved to the hardware count.
ExecutionOptions ResolvedExecution(const JobSpec& spec);
BlockingOptions BlockingOptionsFromSpec(const JobSpec& spec);
MetaBlockingConfig ConfigFromSpec(const JobSpec& spec);

/// Arena-bytes model shared with StreamingExecutor::PlanShards: per
/// candidate, the pair + feature row + probability + aggregation slack.
uint64_t EstimateCandidateBytes(uint64_t num_candidates, size_t feature_dims);

// -- Retained-pair CSV ------------------------------------------------------
// One writer for every backend, so backends that retain the same pairs in
// the same order produce byte-identical files.

Result<std::ofstream> OpenRetainedCsv(const std::string& path);
void AppendRetainedCsvRow(std::ofstream& out, const std::string& left_id,
                          const std::string& right_id);
Status FinishRetainedCsv(std::ofstream& out, const std::string& path);

// -- Backend pipelines ------------------------------------------------------
// The Execute() bodies, split from dataset loading so the `auto` resolver
// can reuse an already-built preparation.

Result<JobResult> RunBatchOn(const JobSpec& spec, const JobInputs& inputs,
                             const PreparedDataset& prep,
                             double blocking_seconds);
Result<JobResult> RunStreamingOn(const JobSpec& spec, const JobInputs& inputs,
                                 const StreamingDataset& prep,
                                 double blocking_seconds);

/// Batch preparation from an already counting-prepared streaming dataset
/// (consumes it): the auto resolver counts candidates with the cheap
/// streaming preparation, then materialises only if batch wins.
PreparedDataset BatchPrepFromStreaming(StreamingDataset prep,
                                       size_t num_threads);

std::unique_ptr<Executor> MakeBatchBackend();
std::unique_ptr<Executor> MakeStreamingBackend();
std::unique_ptr<Executor> MakeServingBackend();

/// The serving backend's Supports() logic plus session construction,
/// shared with Engine::OpenSession. `cold_build_universe` pins the CNP
/// entity universe to the profile count (one-shot Run; batch parity);
/// OpenSession leaves it unset for PR2's incremental present-entity
/// semantics. `training_size` (optional) receives the balanced training
/// sample's actual size.
Result<MetaBlockingSession> BuildServingSession(const JobSpec& spec,
                                                const JobInputs& inputs,
                                                bool cold_build_universe,
                                                size_t* training_size = nullptr);

}  // namespace gsmb::api

#endif  // GSMB_API_BACKENDS_H_
