// Internal plumbing shared by the Engine's standard backends.
//
// Each backend's staged entry point is ExecutePrepared(spec, prepared): the
// Engine loads + blocks + counts ONCE per distinct dataset+blocking pair
// (gsmb/prepared.h, served from the prepare cache) and every backend
// executes its per-configuration stages against that shared, immutable
// handle. The legacy Execute(spec) path builds a private preparation and
// delegates — which is what keeps cross-backend equivalence testable at the
// API boundary: every backend's implied candidate set derives from the SAME
// preparation code.

#ifndef GSMB_API_BACKENDS_H_
#define GSMB_API_BACKENDS_H_

#include <fstream>
#include <memory>
#include <string>

#include "blocking/block_collection.h"
#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/prepared.h"
#include "gsmb/status.h"
#include "stream/streaming_dataset.h"

namespace gsmb::api {

/// Loads CSV files or generates the named synthetic dataset. Missing paths
/// and empty parses are NotFound/InvalidArgument with the offending path.
Result<JobInputs> LoadJobInputs(const JobSpec& spec);

/// Builds the spec's blocking scheme over the inputs and applies Block
/// Purging + Block Filtering with the spec's parameters — the exact
/// preprocessing every backend's implied candidate set derives from.
BlockCollection BuildPreprocessedBlocks(const JobSpec& spec,
                                        const JobInputs& inputs);

/// The full preparation stage: load inputs, build + preprocess blocks, run
/// the counting preparation. Everything Engine::Prepare caches; also the
/// uncached path behind each backend's legacy Execute(spec).
Result<PreparedHandle> BuildPreparedInputs(const JobSpec& spec);

/// spec.execution.options with threads == 0 resolved to the hardware count.
ExecutionOptions ResolvedExecution(const JobSpec& spec);
BlockingOptions BlockingOptionsFromSpec(const JobSpec& spec);
MetaBlockingConfig ConfigFromSpec(const JobSpec& spec);

/// Arena-bytes model shared with StreamingExecutor::PlanShards: per
/// candidate, the pair + feature row + probability + aggregation slack.
uint64_t EstimateCandidateBytes(uint64_t num_candidates, size_t feature_dims);

// -- Retained-pair CSV ------------------------------------------------------
// One writer for every backend, so backends that retain the same pairs in
// the same order produce byte-identical files.

Result<std::ofstream> OpenRetainedCsv(const std::string& path);
void AppendRetainedCsvRow(std::ofstream& out, const std::string& left_id,
                          const std::string& right_id);
Status FinishRetainedCsv(std::ofstream& out, const std::string& path);

/// The one place JobResult timing fields are written. Every backend runs
/// its pipeline against an obs::PhaseTimings (the telemetry clock) and
/// finishes through here: `prepare_seconds` is the prepared handle's
/// one-off cost (plus any in-run re-blocking the backend put in
/// Phase::kBlocking), the phase array fills the `*_seconds` breakdown,
/// and the per-run metric snapshot (result->telemetry) is derived from
/// the result's own counters — so all three backends report the same
/// canonical phase set from the same clock.
void ApplyPhaseTimings(const obs::PhaseTimings& phases,
                       double prepare_seconds, JobResult* result);

// -- Backend pipelines ------------------------------------------------------
// The ExecutePrepared() bodies: per-configuration execution against a
// shared preparation. The batch path materialises the handle's lazy O(|C|)
// arrays on first use; the streaming path runs straight off the counting
// preparation; the serving path trains its resident model from the
// handle's batch arrays (the session still tokenizes its own ingests).

Result<JobResult> RunBatchOn(const JobSpec& spec,
                             const PreparedInputs& prepared);
Result<JobResult> RunStreamingOn(const JobSpec& spec,
                                 const PreparedInputs& prepared);
Result<JobResult> RunServingOn(const JobSpec& spec,
                               const PreparedInputs& prepared);

std::unique_ptr<Executor> MakeBatchBackend();
std::unique_ptr<Executor> MakeStreamingBackend();
std::unique_ptr<Executor> MakeServingBackend();

/// The serving backend's Supports() logic plus session construction,
/// shared with Engine::OpenSession. `cold_build_universe` pins the CNP
/// entity universe to the profile count (one-shot Run; batch parity);
/// OpenSession leaves it unset for PR2's incremental present-entity
/// semantics. `training_size` (optional) receives the balanced training
/// sample's actual size; `phases` (optional) receives the cold build's
/// phase breakdown — kTrain for the model fit plus the session's
/// accumulated refresh phases. `prepared` (optional) is an existing
/// preparation of the SAME spec: when given, model training consumes its
/// batch arrays instead of re-blocking (inputs must be prepared->inputs).
Result<MetaBlockingSession> BuildServingSession(
    const JobSpec& spec, const JobInputs& inputs, bool cold_build_universe,
    size_t* training_size = nullptr, obs::PhaseTimings* phases = nullptr,
    const PreparedInputs* prepared = nullptr);

}  // namespace gsmb::api

#endif  // GSMB_API_BACKENDS_H_
