// The serving backend: a cold-built MetaBlockingSession behind the Executor
// interface. One-shot Run() trains the spec's classifier from the shared
// prepared handle (same preparation and sample replay as the batch
// backend, without re-blocking inside the trainer), folds it into the
// raw-space serving model, ingests the collection, refreshes every shard
// and reports the session's retained set.
//
// Supports() narrows the spec to what a shard-pure session can honour:
// Dirty ER (a session holds ONE resident collection), token blocking (the
// session tokenizes ingests itself), no Block Filtering (a cross-shard
// per-entity top-k) and a linear classifier (the resident model must be
// serialisable raw-space weights). Within that envelope a single-shard cold
// build retains the same pairs as batch/streaming — the cross-backend
// equivalence tests/api_engine_test.cc pins down; with more shards the
// documented per-shard union semantics of serve/session.h applies.

#include <algorithm>
#include <cmath>
#include <utility>

#include "api/backends.h"
#include "gsmb/digest.h"
#include "gsmb/log.h"
#include "serve/serving_model.h"

namespace gsmb::api {

namespace {

class ServingBackend : public Executor {
 public:
  std::string name() const override { return "serving"; }

  Status Supports(const JobSpec& spec) const override {
    if (!spec.dataset.dirty()) {
      return Status::FailedPrecondition(
          "the serving backend requires a single-collection (Dirty ER) "
          "dataset: a session holds one resident collection (drop "
          "dataset.e2 or use a generated-dirty source)");
    }
    if (spec.blocking.scheme != kSchemeToken) {
      return Status::FailedPrecondition(
          "the serving backend blocks by tokens (a session tokenizes every "
          "ingest itself); set blocking.scheme to token");
    }
    if (spec.blocking.filter_ratio < 1.0) {
      return Status::FailedPrecondition(
          "the serving backend cannot apply Block Filtering (a cross-shard "
          "per-entity top-k would make shard caches interdependent); set "
          "blocking.filter_ratio to 1");
    }
    if (spec.classifier == ClassifierKind::kGaussianNaiveBayes) {
      return Status::FailedPrecondition(
          "the serving backend needs a classifier with a raw-space linear "
          "form for its resident model; use logreg or svc");
    }
    return Status::Ok();
  }

  // The staged path: the handle's blocked, labelled candidate view feeds
  // model training directly (TrainServingModelFromPrepared), so a cold
  // build no longer re-blocks inside the trainer — and a cached handle
  // makes repeat cold builds skip preparation entirely. The session still
  // tokenizes its own ingests; only the bootstrap training reuses the
  // preparation.
  bool AcceptsPrepared() const override { return true; }

  Result<JobResult> ExecutePrepared(
      const JobSpec& spec, const PreparedInputs& prepared) const override {
    return RunServingOn(spec, prepared);
  }

  // Legacy path (direct Execute callers): a private preparation, same code.
  Result<JobResult> Execute(const JobSpec& spec) const override {
    Result<PreparedHandle> prepared = BuildPreparedInputs(spec);
    if (!prepared.ok()) return prepared.status();
    return RunServingOn(spec, **prepared);
  }
};

}  // namespace

Result<JobResult> RunServingOn(const JobSpec& spec,
                               const PreparedInputs& prepared) {
  const JobInputs& inputs = prepared.inputs;
  size_t training_size = 0;
  obs::PhaseTimings phases;
  Result<MetaBlockingSession> session =
      BuildServingSession(spec, inputs, /*cold_build_universe=*/true,
                          &training_size, &phases, &prepared);
  if (!session.ok()) return session.status();

  JobResult result;
  result.backend = "serving";
  result.training_size = training_size;

  const std::vector<CandidatePair> retained = session->RetainedPairs();
  size_t true_positives = 0;
  for (const CandidatePair& pair : retained) {
    if (inputs.ground_truth.IsMatch(pair.left, pair.right)) {
      ++true_positives;
    }
  }
  result.metrics = MetricsFromCounts(true_positives, retained.size(),
                                     inputs.ground_truth.size());

  const SessionStats stats = session->Stats();
  result.num_blocks = stats.num_blocks;
  result.num_candidates = stats.num_candidates;
  result.shards_used = stats.num_shards;
  result.model_coefficients = session->model().weights;
  result.model_coefficients.push_back(session->model().intercept);
  // The handle's one-off preparation cost is the prepare phase; the
  // session's own refresh re-block lands in kBlocking as before.
  ApplyPhaseTimings(phases, prepared.prepare_seconds, &result);

  // Provenance: the cold build trains from the prepared handle, so it
  // carries the handle's fingerprint and digest exactly like batch and
  // streaming — report diff compares all three backends on equal terms.
  result.dataset_fingerprint = prepared.dataset_fingerprint;
  result.prepared_digest = prepared.prepared_digest;
  obs::PairSetDigest digest;
  for (const CandidatePair& pair : retained) {
    digest.AddPair(inputs.ExternalLeftId(pair.left),
                   inputs.ExternalRightId(pair.right));
  }
  result.retained_digest = digest.Value();
  result.retained_count = digest.count;
  GSMB_LOG_INFO("run.done", {"backend", "serving"},
                {"retained", digest.count},
                {"shards", stats.num_shards},
                {"retained_digest", obs::DigestHex(result.retained_digest)});

  // Session pairs are sorted ascending (left, right) — the same order the
  // batch indices and the streaming sink produce.
  if (!spec.output.retained_csv.empty()) {
    Result<std::ofstream> csv = OpenRetainedCsv(spec.output.retained_csv);
    if (!csv.ok()) return csv.status();
    for (const CandidatePair& pair : retained) {
      AppendRetainedCsvRow(*csv, inputs.ExternalLeftId(pair.left),
                           inputs.ExternalRightId(pair.right));
    }
    Status finished = FinishRetainedCsv(*csv, spec.output.retained_csv);
    if (!finished.ok()) return finished;
    result.retained_csv_rows = retained.size();
  }
  if (spec.output.keep_retained) {
    result.retained.reserve(retained.size());
    for (const CandidatePair& pair : retained) {
      result.retained.push_back({inputs.ExternalLeftId(pair.left),
                                 inputs.ExternalRightId(pair.right)});
    }
  }
  return result;
}

Result<MetaBlockingSession> BuildServingSession(const JobSpec& spec,
                                                const JobInputs& inputs,
                                                bool cold_build_universe,
                                                size_t* training_size,
                                                obs::PhaseTimings* phases,
                                                const PreparedInputs* prepared) {
  // Train exactly like the batch backend trains: same blocking options,
  // same balanced-sample seed, same classifier. The trainer folds the
  // standardisation into raw-space weights, the one representation a
  // snapshot can carry. With a prepared handle the trainer consumes its
  // blocked, labelled candidate view (the same arrays batch executes
  // against) instead of re-blocking the collection itself.
  ServingModelTraining training;
  training.classifier = spec.classifier;
  training.train_per_class = spec.training.labels_per_class;
  training.seed = spec.training.seed;
  training.blocking = BlockingOptionsFromSpec(spec);
  training.execution = ResolvedExecution(spec);
  obs::PhaseTimings build_phases;
  ServingModel model = [&] {
    obs::ScopedPhase phase(&build_phases, obs::Phase::kTrain);
    if (prepared != nullptr) {
      const PreparedInputs::BatchArrays& batch =
          prepared->Batch(ResolvedExecution(spec).num_threads);
      PreparedRef ref;
      ref.name = &prepared->stream.name;
      ref.index = prepared->stream.index.get();
      ref.stats = &prepared->stream.stats;
      ref.pairs = &batch.pairs;
      ref.is_positive = &batch.is_positive;
      ref.num_ground_truth = prepared->stream.ground_truth.size();
      return TrainServingModelFromPrepared(ref, spec.features, training,
                                           training_size);
    }
    return TrainServingModel(inputs.e1, inputs.ground_truth, spec.features,
                             training, training_size);
  }();

  SessionOptions options;
  options.num_shards = spec.execution.shards;
  options.execution = ResolvedExecution(spec);
  options.min_token_length = spec.blocking.min_token_length;
  options.pruning = spec.pruning.kind;
  options.blast_ratio = spec.pruning.blast_ratio;
  options.validity_threshold = spec.pruning.validity_threshold;
  if (spec.execution.serving_max_block_size > 0) {
    options.max_block_size = spec.execution.serving_max_block_size;
  } else if (spec.blocking.purge_size_fraction < 1.0) {
    // Derive the session's absolute purge cap from the batch fraction:
    // batch drops |b| > fraction * |E| (strict), which for integer sizes
    // equals |b| > floor(fraction * |E|).
    options.max_block_size = static_cast<size_t>(std::floor(
        spec.blocking.purge_size_fraction *
        static_cast<double>(inputs.e1.size())));
  }
  if (cold_build_universe) {
    options.cnp_entity_universe = inputs.e1.size();
  }

  MetaBlockingSession session(options, std::move(model));
  session.AddProfiles(inputs.e1.profiles());
  session.Refresh();
  if (phases != nullptr) {
    build_phases.MergeFrom(session.AccumulatedPhases());
    phases->MergeFrom(build_phases);
  }
  return session;
}

std::unique_ptr<Executor> MakeServingBackend() {
  return std::make_unique<ServingBackend>();
}

}  // namespace gsmb::api
