// Minimal JSON value model, parser and serializer for the JobSpec layer.
//
// The container ships no third-party JSON dependency, and the JobSpec needs
// only a small, predictable subset: null/bool/number/string, arrays,
// objects. Two properties matter more than generality here and shape the
// implementation:
//
//   * Objects preserve INSERTION order. `gsmb_cli explain` output and
//     serialized specs must be stable and diff-friendly, so members
//     serialize in the order they were added/parsed, not hash order.
//   * Numbers keep an exact unsigned-integer form when they have one.
//     JobSpec carries 64-bit seeds; round-tripping them through a double
//     would silently corrupt values above 2^53.
//
// Parse() returns Result with line:column diagnostics instead of throwing —
// the spec parser turns these directly into user-facing messages.

#ifndef GSMB_API_JSON_H_
#define GSMB_API_JSON_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gsmb/status.h"

namespace gsmb::json {

class Value;

/// Insertion-ordered string -> Value map. Linear lookup: spec objects have
/// at most a dozen members.
class Object {
 public:
  using Member = std::pair<std::string, Value>;

  const Value* Find(const std::string& key) const;
  Value* Find(const std::string& key);
  bool Contains(const std::string& key) const { return Find(key) != nullptr; }

  /// Returns the member, inserting a null one at the end if absent.
  Value& operator[](const std::string& key);

  const std::vector<Member>& members() const { return members_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

 private:
  std::vector<Member> members_;
};

using Array = std::vector<Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  /// One constrained template for every integer type (int, size_t,
  /// uint64_t, ...) — separate uint64_t/int overloads would make size_t
  /// call sites ambiguous on platforms where size_t is a distinct type.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {
    if (v >= T{0}) {
      u64_ = static_cast<uint64_t>(v);
      has_u64_ = true;
    }
  }
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// True when the lexeme was a non-negative integer that fits uint64_t —
  /// the exact form is then available through AsU64().
  bool is_u64() const { return kind_ == Kind::kNumber && has_u64_; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  uint64_t AsU64() const { return u64_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& AsObject() { return object_; }

  static const char* KindName(Kind kind);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  uint64_t u64_ = 0;
  bool has_u64_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (the whole string must be consumed). Errors
/// carry "line L, column C" positions.
Result<Value> Parse(const std::string& text);

/// Serializes with `indent` spaces per level (0 = single line). Object
/// members appear in insertion order; the output re-parses to an equal
/// value.
std::string Dump(const Value& value, int indent = 2);

}  // namespace gsmb::json

#endif  // GSMB_API_JSON_H_
