// The streaming backend: stream/'s bounded-memory executor behind the
// Executor interface. Retained pairs are bit-identical to the batch
// backend's for any shard/thread count (stream/streaming_executor.h
// documents why); retained CSV rows stream straight to disk so the mode
// never buffers O(retained) memory. Executes straight off a shared
// PreparedInputs handle's counting preparation — a streaming-only sweep
// never materialises the O(|C|) batch arrays.

#include <utility>

#include "api/backends.h"
#include "gsmb/digest.h"
#include "gsmb/log.h"
#include "stream/streaming_executor.h"

namespace gsmb::api {

namespace {

class StreamingBackend : public Executor {
 public:
  std::string name() const override { return "streaming"; }

  Status Supports(const JobSpec&) const override { return Status::Ok(); }

  bool AcceptsPrepared() const override { return true; }

  Result<JobResult> ExecutePrepared(
      const JobSpec& spec, const PreparedInputs& prepared) const override {
    return RunStreamingOn(spec, prepared);
  }

  Result<JobResult> Execute(const JobSpec& spec) const override {
    Result<PreparedHandle> prepared = BuildPreparedInputs(spec);
    if (!prepared.ok()) return prepared.status();
    return RunStreamingOn(spec, **prepared);
  }
};

}  // namespace

Result<JobResult> RunStreamingOn(const JobSpec& spec,
                                 const PreparedInputs& prepared) {
  const JobInputs& inputs = prepared.inputs;
  const StreamingDataset& prep = prepared.stream;

  StreamingOptions options;
  options.num_shards = spec.execution.shards;
  options.memory_budget_mb = spec.execution.memory_budget_mb;
  StreamingExecutor executor(prep, options);

  JobResult result;
  result.backend = "streaming";

  // Retained pairs arrive in ascending global-index order — ascending
  // (left, right) — so CSV rows and kept pairs match the batch backend's
  // byte for byte without ever materialising the retained set.
  std::ofstream csv_file;
  bool want_csv = !spec.output.retained_csv.empty();
  if (want_csv) {
    Result<std::ofstream> csv = OpenRetainedCsv(spec.output.retained_csv);
    if (!csv.ok()) return csv.status();
    csv_file = std::move(*csv);
  }
  // The sink is always installed: the retained-set digest is part of every
  // JobResult (the provenance contract), not only of CSV/keep runs. The
  // executor invokes it serially, in ascending global-index order; the
  // digest is order-free anyway.
  obs::PairSetDigest digest;
  StreamingExecutor::RetainedSink sink =
      [&](uint32_t, const CandidatePair& pair, double) {
        const std::string& left = inputs.ExternalLeftId(pair.left);
        const std::string& right = inputs.ExternalRightId(pair.right);
        digest.AddPair(left, right);
        if (want_csv) {
          AppendRetainedCsvRow(csv_file, left, right);
          ++result.retained_csv_rows;
        }
        if (spec.output.keep_retained) {
          result.retained.push_back({left, right});
        }
      };

  StreamingResult run = executor.Run(ConfigFromSpec(spec), sink);
  if (want_csv) {
    Status finished = FinishRetainedCsv(csv_file, spec.output.retained_csv);
    if (!finished.ok()) return finished;
  }

  result.metrics = run.metrics;
  result.blocking_quality = prep.blocking_quality;
  result.num_blocks = prep.blocks.size();
  result.num_candidates = prep.num_candidates();
  result.training_size = run.training_size;
  result.model_coefficients = run.model_coefficients;
  ApplyPhaseTimings(run.phases, prepared.prepare_seconds, &result);
  result.shards_used = run.num_shards_used;
  result.sweeps = run.sweeps;

  result.dataset_fingerprint = prepared.dataset_fingerprint;
  result.prepared_digest = prepared.prepared_digest;
  result.retained_digest = digest.Value();
  result.retained_count = digest.count;
  GSMB_LOG_INFO("run.done", {"backend", "streaming"},
                {"retained", digest.count},
                {"shards", run.num_shards_used},
                {"retained_digest", obs::DigestHex(result.retained_digest)});
  return result;
}

std::unique_ptr<Executor> MakeStreamingBackend() {
  return std::make_unique<StreamingBackend>();
}

}  // namespace gsmb::api
