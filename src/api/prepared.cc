#include "gsmb/prepared.h"

#include "blocking/entity_index.h"
#include "gsmb/telemetry.h"
#include "util/stopwatch.h"

namespace gsmb {

const PreparedInputs::BatchArrays& PreparedInputs::Batch(
    size_t num_threads) const {
  // call_once makes the lazy materialisation safe under concurrent Execute
  // calls against one shared handle: every caller gets the same arrays,
  // built exactly once. The winner's thread count shapes only the build's
  // wall clock — GenerateCandidatePairs is bit-identical for any value.
  std::call_once(batch_once_, [&] {
    // The batch backend's pair-generation phase happens here, inside the
    // handle — span it so a batch trace shows the same canonical phases
    // as a streaming one.
    GSMB_SPAN("pairs");
    Stopwatch watch;
    batch_.pairs = GenerateCandidatePairs(*stream.index, num_threads);
    batch_.is_positive.resize(batch_.pairs.size());
    for (size_t i = 0; i < batch_.pairs.size(); ++i) {
      batch_.is_positive[i] = stream.ground_truth.IsMatch(
                                  batch_.pairs[i].left, batch_.pairs[i].right)
                                  ? 1
                                  : 0;
    }
    batch_.materialize_seconds = watch.ElapsedSeconds();
    batch_ready_.store(true, std::memory_order_release);
  });
  return batch_;
}

namespace {

size_t ProfileBytes(const EntityCollection& collection) {
  size_t bytes = collection.size() * sizeof(EntityProfile);
  for (const EntityProfile& profile : collection.profiles()) {
    bytes += profile.external_id().size();
    for (const Attribute& attribute : profile.attributes()) {
      bytes += sizeof(Attribute) + attribute.name.size() +
               attribute.value.size();
    }
  }
  return bytes;
}

size_t GroundTruthBytes(const GroundTruth& gt) {
  // Pair vector plus the hash-set index (bucket + node overhead estimate).
  return gt.size() * (sizeof(MatchPair) + 4 * sizeof(uint64_t));
}

size_t BlockBytes(const BlockCollection& blocks) {
  size_t bytes = blocks.size() * sizeof(Block);
  for (const Block& block : blocks.blocks()) {
    bytes += block.key.size() +
             (block.left.size() + block.right.size()) * sizeof(EntityId);
  }
  return bytes;
}

size_t IndexBytes(const EntityIndex& index) {
  // Both CSR directions carry Σ|b| uint32 entries plus per-entity offsets
  // and four per-entity aggregate arrays.
  return index.TotalEntityOccurrences() * 2 * sizeof(uint32_t) +
         index.num_entities() * (2 * sizeof(size_t) + 4 * sizeof(double)) +
         index.num_blocks() * (sizeof(uint32_t) + sizeof(double));
}

}  // namespace

size_t PreparedInputs::ApproxBytes() const {
  size_t bytes = sizeof(PreparedInputs) + cache_key.size();
  bytes += ProfileBytes(inputs.e1) + ProfileBytes(inputs.e2);
  // The ground truth is held twice (inputs + the counting preparation).
  bytes += 2 * GroundTruthBytes(inputs.ground_truth);
  bytes += BlockBytes(stream.blocks);
  if (stream.index != nullptr) bytes += IndexBytes(*stream.index);
  bytes += stream.pivot_offsets.size() * sizeof(uint64_t);
  bytes += stream.positive_indices.size() * sizeof(uint64_t);
  if (batch_materialized()) {
    bytes += batch_.pairs.size() * sizeof(CandidatePair) +
             batch_.is_positive.size();
  }
  return bytes;
}

}  // namespace gsmb
