// The worker side of the distributed tier (gsmb/remote.h RunWorker).
//
// A worker is a plain protocol loop over stdin/stdout: load the shipped
// snapshot into a private Engine's prepare cache, prove what was loaded
// (hello frame with the preparation's digests), then serve kJob frames
// with engine.Run until shutdown/EOF. stdout carries ONLY protocol frames
// — a worker never prints; diagnostics travel inside frames.

#include <cerrno>
#include <csignal>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "dist/wire.h"
#include "gsmb/log.h"
#include "gsmb/remote.h"
#include "gsmb/snapshot.h"

namespace gsmb {

namespace {

constexpr int kInFd = 0;
constexpr int kOutFd = 1;

/// Appends whatever is available on `fd` to `buffer`. Returns false on
/// EOF or a hard read error (the coordinator went away).
bool ReadSome(int fd, std::string* buffer) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return false;
  }
}

/// Runs one job and ships retained pairs, the event-log batch and the
/// result frame. A false return means the coordinator pipe broke.
bool ServeJob(const Engine& engine, const dist::JobMessage& job) {
  obs::LogSink sink(obs::LogLevel::kInfo);
  obs::InstallLogSink(&sink);
  const PrepareCacheStats before = engine.prepare_cache_stats();
  Result<JobResult> run = engine.Run(job.spec);
  const PrepareCacheStats after = engine.prepare_cache_stats();
  obs::InstallLogSink(nullptr);

  dist::ResultMessage result;
  result.variant = job.variant;
  result.prepare_misses = after.misses - before.misses;
  if (run.ok()) {
    result.status = Status::Ok();
    result.result = std::move(*run);
  } else {
    result.status = run.status();
  }

  if (result.status.ok() && job.spec.output.keep_retained) {
    dist::RetainedMessage retained;
    retained.variant = job.variant;
    retained.pairs = std::move(result.result.retained);
    result.result.retained.clear();
    if (!dist::WriteFrame(kOutFd, dist::FrameType::kRetained,
                          dist::EncodeRetained(retained))
             .ok()) {
      return false;
    }
  }

  dist::EventsMessage events;
  events.variant = job.variant;
  events.records = sink.Records().size();
  events.jsonl = sink.JsonLines();
  if (!dist::WriteFrame(kOutFd, dist::FrameType::kEvents,
                        dist::EncodeEvents(events))
           .ok()) {
    return false;
  }

  return dist::WriteFrame(kOutFd, dist::FrameType::kResult,
                          dist::EncodeResult(result))
      .ok();
}

}  // namespace

int RunWorker(const WorkerOptions& options) {
  // A dying coordinator must surface as a write error, not a SIGPIPE kill,
  // so the worker can exit on its own terms.
  std::signal(SIGPIPE, SIG_IGN);

  Engine engine;
  dist::HelloMessage hello;
  if (!options.snapshot_path.empty()) {
    Result<PreparedHandle> loaded =
        LoadPreparedSnapshot(options.snapshot_path, options.num_threads);
    if (loaded.ok()) {
      hello.ok = true;
      hello.snapshot_loaded = true;
      hello.cache_key = (*loaded)->cache_key;
      hello.dataset_fingerprint = (*loaded)->dataset_fingerprint;
      hello.prepared_digest = (*loaded)->prepared_digest;
      Status adopted = engine.AdoptPrepared(*loaded);
      if (!adopted.ok()) {
        hello.ok = false;
        hello.error = adopted.message();
      }
    } else {
      hello.error = loaded.status().message();
    }
  } else {
    // No snapshot: serve jobs with on-demand preparation.
    hello.ok = true;
  }

  if (!dist::WriteFrame(kOutFd, dist::FrameType::kHello,
                        dist::EncodeHello(hello))
           .ok()) {
    return 1;
  }
  if (!hello.ok) return 1;

  std::string buffer;
  dist::Frame frame;
  for (;;) {
    Result<bool> extracted = dist::ExtractFrame(&buffer, &frame);
    if (!extracted.ok()) return 1;  // corrupt stream
    if (!*extracted) {
      if (!ReadSome(kInFd, &buffer)) return 0;  // coordinator closed: done
      continue;
    }
    switch (frame.type) {
      case dist::FrameType::kJob: {
        Result<dist::JobMessage> job = dist::DecodeJob(frame.payload);
        if (!job.ok()) {
          // A spec the worker cannot even parse: report it as this
          // variant's failure rather than dying silently.
          dist::ResultMessage result;
          result.status = job.status();
          if (!dist::WriteFrame(kOutFd, dist::FrameType::kResult,
                                dist::EncodeResult(result))
                   .ok()) {
            return 1;
          }
          break;
        }
        if (!ServeJob(engine, *job)) return 1;
        break;
      }
      case dist::FrameType::kShutdown:
        return 0;
      default:
        return 1;  // protocol violation: only the coordinator-to-worker
                   // frame types are valid here
    }
  }
}

}  // namespace gsmb
