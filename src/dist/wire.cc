#include "dist/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/spec_json.h"
#include "gsmb/telemetry.h"

namespace gsmb::dist {

namespace {

// -- Little-endian scalar helpers (platform-stable framing) -----------------

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kShutdown);
}

// -- Lenient JSON field readers ---------------------------------------------
// The protocol is an internal, same-build contract whose semantic content
// is verified downstream by digests; absent fields default rather than
// error, which keeps the codec small and forward-tolerant.

uint64_t U64Field(const json::Object& obj, const char* key,
                  uint64_t fallback = 0) {
  const json::Value* value = obj.Find(key);
  return value != nullptr && value->is_u64() ? value->AsU64() : fallback;
}

double NumberField(const json::Object& obj, const char* key,
                   double fallback = 0.0) {
  const json::Value* value = obj.Find(key);
  return value != nullptr && value->is_number() ? value->AsDouble() : fallback;
}

std::string StringField(const json::Object& obj, const char* key) {
  const json::Value* value = obj.Find(key);
  return value != nullptr && value->is_string() ? value->AsString()
                                                : std::string();
}

bool BoolField(const json::Object& obj, const char* key,
               bool fallback = false) {
  const json::Value* value = obj.Find(key);
  return value != nullptr && value->is_bool() ? value->AsBool() : fallback;
}

const json::Object* ObjectField(const json::Object& obj, const char* key) {
  const json::Value* value = obj.Find(key);
  return value != nullptr && value->is_object() ? &value->AsObject() : nullptr;
}

Result<json::Object> ParseObject(const std::string& payload,
                                 const char* what) {
  Result<json::Value> parsed = json::Parse(payload);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(what) + " frame: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument(std::string(what) +
                                   " frame: expected a JSON object");
  }
  return std::move(parsed->AsObject());
}

// -- MetricsSnapshot codec --------------------------------------------------

json::Value SnapshotToJson(const obs::MetricsSnapshot& snapshot) {
  json::Object root;
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = json::Value(value);
  }
  root["counters"] = json::Value(std::move(counters));
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges[name] = json::Value(value);
  }
  root["gauges"] = json::Value(std::move(gauges));
  json::Object histograms;
  for (const auto& [name, data] : snapshot.histograms) {
    json::Object h;
    json::Array bounds;
    for (double b : data.bounds) bounds.emplace_back(b);
    h["bounds"] = json::Value(std::move(bounds));
    json::Array counts;
    for (uint64_t c : data.counts) counts.emplace_back(c);
    h["counts"] = json::Value(std::move(counts));
    h["count"] = json::Value(data.count);
    h["sum"] = json::Value(data.sum);
    h["min"] = json::Value(data.min);
    h["max"] = json::Value(data.max);
    histograms[name] = json::Value(std::move(h));
  }
  root["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(root));
}

obs::MetricsSnapshot SnapshotFromJson(const json::Object& root) {
  obs::MetricsSnapshot snapshot;
  if (const json::Object* counters = ObjectField(root, "counters")) {
    for (const auto& [name, value] : counters->members()) {
      if (value.is_u64()) snapshot.counters[name] = value.AsU64();
    }
  }
  if (const json::Object* gauges = ObjectField(root, "gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      if (value.is_number()) snapshot.gauges[name] = value.AsDouble();
    }
  }
  if (const json::Object* histograms = ObjectField(root, "histograms")) {
    for (const auto& [name, value] : histograms->members()) {
      if (!value.is_object()) continue;
      const json::Object& h = value.AsObject();
      obs::HistogramData data;
      if (const json::Value* bounds = h.Find("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const json::Value& b : bounds->AsArray()) {
          if (b.is_number()) data.bounds.push_back(b.AsDouble());
        }
      }
      if (const json::Value* counts = h.Find("counts");
          counts != nullptr && counts->is_array()) {
        for (const json::Value& c : counts->AsArray()) {
          if (c.is_u64()) data.counts.push_back(c.AsU64());
        }
      }
      data.count = U64Field(h, "count");
      data.sum = NumberField(h, "sum");
      data.min = NumberField(h, "min");
      data.max = NumberField(h, "max");
      snapshot.histograms[name] = std::move(data);
    }
  }
  return snapshot;
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("wire: frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the frame limit");
  }
  std::string frame;
  frame.reserve(5 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);

  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wire: write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<bool> ExtractFrame(std::string* buffer, Frame* out) {
  if (buffer->size() < 5) return false;
  const uint64_t length = ReadU32(buffer->data());
  const uint8_t type = static_cast<uint8_t>((*buffer)[4]);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("wire: frame length " +
                                   std::to_string(length) +
                                   " exceeds the frame limit (corrupt "
                                   "stream?)");
  }
  if (!ValidFrameType(type)) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(type) +
                                   " (corrupt stream?)");
  }
  if (buffer->size() < 5 + length) return false;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(*buffer, 5, length);
  buffer->erase(0, 5 + length);
  return true;
}

// ---------------------------------------------------------------------------
// Hello
// ---------------------------------------------------------------------------

std::string EncodeHello(const HelloMessage& hello) {
  json::Object root;
  root["ok"] = json::Value(hello.ok);
  if (!hello.error.empty()) root["error"] = json::Value(hello.error);
  root["cache_key"] = json::Value(hello.cache_key);
  root["dataset_fingerprint"] = json::Value(hello.dataset_fingerprint);
  root["prepared_digest"] = json::Value(hello.prepared_digest);
  root["snapshot_loaded"] = json::Value(hello.snapshot_loaded);
  return json::Dump(json::Value(std::move(root)), /*indent=*/0);
}

Result<HelloMessage> DecodeHello(const std::string& payload) {
  Result<json::Object> root = ParseObject(payload, "hello");
  if (!root.ok()) return root.status();
  HelloMessage hello;
  hello.ok = BoolField(*root, "ok");
  hello.error = StringField(*root, "error");
  hello.cache_key = StringField(*root, "cache_key");
  hello.dataset_fingerprint = U64Field(*root, "dataset_fingerprint");
  hello.prepared_digest = U64Field(*root, "prepared_digest");
  hello.snapshot_loaded = BoolField(*root, "snapshot_loaded");
  return hello;
}

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

std::string EncodeJob(const JobMessage& job) {
  json::Object root;
  root["variant"] = json::Value(job.variant);
  root["spec"] = api::JobSpecToJsonValue(job.spec);
  return json::Dump(json::Value(std::move(root)), /*indent=*/0);
}

Result<JobMessage> DecodeJob(const std::string& payload) {
  Result<json::Object> root = ParseObject(payload, "job");
  if (!root.ok()) return root.status();
  JobMessage job;
  job.variant = U64Field(*root, "variant");
  const json::Value* spec = root->Find("spec");
  if (spec == nullptr) {
    return Status::InvalidArgument("job frame: missing spec");
  }
  Result<JobSpec> parsed = api::JobSpecFromJsonValue(*spec, JobSpec(), "job");
  if (!parsed.ok()) return parsed.status();
  job.spec = *parsed;
  return job;
}

// ---------------------------------------------------------------------------
// JobResult
// ---------------------------------------------------------------------------

json::Value JobResultToJsonValue(const JobResult& result) {
  json::Object root;
  root["backend"] = json::Value(result.backend);

  json::Object metrics;
  metrics["recall"] = json::Value(result.metrics.recall);
  metrics["precision"] = json::Value(result.metrics.precision);
  metrics["f1"] = json::Value(result.metrics.f1);
  metrics["true_positives"] = json::Value(result.metrics.true_positives);
  metrics["retained"] = json::Value(result.metrics.retained);
  root["metrics"] = json::Value(std::move(metrics));

  json::Object quality;
  quality["num_candidates"] = json::Value(result.blocking_quality.num_candidates);
  quality["duplicates_covered"] =
      json::Value(result.blocking_quality.duplicates_covered);
  quality["recall"] = json::Value(result.blocking_quality.recall);
  quality["precision"] = json::Value(result.blocking_quality.precision);
  quality["f1"] = json::Value(result.blocking_quality.f1);
  root["blocking_quality"] = json::Value(std::move(quality));

  root["num_blocks"] = json::Value(result.num_blocks);
  root["num_candidates"] = json::Value(result.num_candidates);
  root["training_size"] = json::Value(result.training_size);
  json::Array coefficients;
  for (double c : result.model_coefficients) coefficients.emplace_back(c);
  root["model_coefficients"] = json::Value(std::move(coefficients));

  json::Object timings;
  timings["blocking_seconds"] = json::Value(result.blocking_seconds);
  timings["generate_seconds"] = json::Value(result.generate_seconds);
  timings["feature_seconds"] = json::Value(result.feature_seconds);
  timings["train_seconds"] = json::Value(result.train_seconds);
  timings["classify_seconds"] = json::Value(result.classify_seconds);
  timings["prune_seconds"] = json::Value(result.prune_seconds);
  timings["total_seconds"] = json::Value(result.total_seconds);
  root["timings"] = json::Value(std::move(timings));

  root["shards_used"] = json::Value(result.shards_used);
  root["sweeps"] = json::Value(result.sweeps);
  root["retained_csv_rows"] = json::Value(result.retained_csv_rows);
  root["telemetry"] = SnapshotToJson(result.telemetry);
  root["dataset_fingerprint"] = json::Value(result.dataset_fingerprint);
  root["prepared_digest"] = json::Value(result.prepared_digest);
  root["retained_digest"] = json::Value(result.retained_digest);
  root["retained_count"] = json::Value(result.retained_count);
  return json::Value(std::move(root));
}

Result<JobResult> JobResultFromJsonValue(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("result frame: expected a JSON object");
  }
  const json::Object& root = value.AsObject();
  JobResult result;
  result.backend = StringField(root, "backend");
  if (const json::Object* metrics = ObjectField(root, "metrics")) {
    result.metrics.recall = NumberField(*metrics, "recall");
    result.metrics.precision = NumberField(*metrics, "precision");
    result.metrics.f1 = NumberField(*metrics, "f1");
    result.metrics.true_positives =
        static_cast<size_t>(U64Field(*metrics, "true_positives"));
    result.metrics.retained =
        static_cast<size_t>(U64Field(*metrics, "retained"));
  }
  if (const json::Object* quality = ObjectField(root, "blocking_quality")) {
    result.blocking_quality.num_candidates =
        static_cast<size_t>(U64Field(*quality, "num_candidates"));
    result.blocking_quality.duplicates_covered =
        static_cast<size_t>(U64Field(*quality, "duplicates_covered"));
    result.blocking_quality.recall = NumberField(*quality, "recall");
    result.blocking_quality.precision = NumberField(*quality, "precision");
    result.blocking_quality.f1 = NumberField(*quality, "f1");
  }
  result.num_blocks = static_cast<size_t>(U64Field(root, "num_blocks"));
  result.num_candidates = U64Field(root, "num_candidates");
  result.training_size = static_cast<size_t>(U64Field(root, "training_size"));
  if (const json::Value* coefficients = root.Find("model_coefficients");
      coefficients != nullptr && coefficients->is_array()) {
    for (const json::Value& c : coefficients->AsArray()) {
      if (c.is_number()) result.model_coefficients.push_back(c.AsDouble());
    }
  }
  if (const json::Object* timings = ObjectField(root, "timings")) {
    result.blocking_seconds = NumberField(*timings, "blocking_seconds");
    result.generate_seconds = NumberField(*timings, "generate_seconds");
    result.feature_seconds = NumberField(*timings, "feature_seconds");
    result.train_seconds = NumberField(*timings, "train_seconds");
    result.classify_seconds = NumberField(*timings, "classify_seconds");
    result.prune_seconds = NumberField(*timings, "prune_seconds");
    result.total_seconds = NumberField(*timings, "total_seconds");
  }
  result.shards_used = static_cast<size_t>(U64Field(root, "shards_used"));
  result.sweeps = static_cast<size_t>(U64Field(root, "sweeps"));
  result.retained_csv_rows =
      static_cast<size_t>(U64Field(root, "retained_csv_rows"));
  if (const json::Object* telemetry = ObjectField(root, "telemetry")) {
    result.telemetry = SnapshotFromJson(*telemetry);
  }
  result.dataset_fingerprint = U64Field(root, "dataset_fingerprint");
  result.prepared_digest = U64Field(root, "prepared_digest");
  result.retained_digest = U64Field(root, "retained_digest");
  result.retained_count = U64Field(root, "retained_count");
  return result;
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

std::string EncodeResult(const ResultMessage& message) {
  json::Object root;
  root["variant"] = json::Value(message.variant);
  root["ok"] = json::Value(message.status.ok());
  if (!message.status.ok()) {
    root["code"] = json::Value(static_cast<uint64_t>(message.status.code()));
    root["message"] = json::Value(message.status.message());
  } else {
    root["result"] = JobResultToJsonValue(message.result);
  }
  root["prepare_misses"] = json::Value(message.prepare_misses);
  return json::Dump(json::Value(std::move(root)), /*indent=*/0);
}

Result<ResultMessage> DecodeResult(const std::string& payload) {
  Result<json::Object> root = ParseObject(payload, "result");
  if (!root.ok()) return root.status();
  ResultMessage message;
  message.variant = U64Field(*root, "variant");
  message.prepare_misses = U64Field(*root, "prepare_misses");
  if (BoolField(*root, "ok")) {
    const json::Value* result = root->Find("result");
    if (result == nullptr) {
      return Status::InvalidArgument("result frame: ok but missing result");
    }
    Result<JobResult> parsed = JobResultFromJsonValue(*result);
    if (!parsed.ok()) return parsed.status();
    message.result = std::move(*parsed);
    message.status = Status::Ok();
  } else {
    message.status =
        Status(static_cast<StatusCode>(U64Field(*root, "code")),
               StringField(*root, "message"));
  }
  return message;
}

// ---------------------------------------------------------------------------
// Retained (binary)
// ---------------------------------------------------------------------------

std::string EncodeRetained(const RetainedMessage& message) {
  std::string payload;
  size_t bytes = 16;
  for (const RetainedPair& pair : message.pairs) {
    bytes += 8 + pair.left.size() + pair.right.size();
  }
  payload.reserve(bytes);
  AppendU64(&payload, message.variant);
  AppendU64(&payload, message.pairs.size());
  for (const RetainedPair& pair : message.pairs) {
    AppendU32(&payload, static_cast<uint32_t>(pair.left.size()));
    payload.append(pair.left);
    AppendU32(&payload, static_cast<uint32_t>(pair.right.size()));
    payload.append(pair.right);
  }
  return payload;
}

Result<RetainedMessage> DecodeRetained(const std::string& payload) {
  RetainedMessage message;
  size_t pos = 0;
  auto need = [&](size_t n) { return payload.size() - pos >= n; };
  if (!need(16)) {
    return Status::InvalidArgument("retained frame: truncated header");
  }
  message.variant = ReadU64(payload.data() + pos);
  pos += 8;
  const uint64_t count = ReadU64(payload.data() + pos);
  pos += 8;
  // Each pair occupies at least the two length fields.
  if (count > (payload.size() - pos) / 8) {
    return Status::InvalidArgument("retained frame: pair count exceeds "
                                   "payload size");
  }
  message.pairs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RetainedPair pair;
    for (std::string* side : {&pair.left, &pair.right}) {
      if (!need(4)) {
        return Status::InvalidArgument("retained frame: truncated pair");
      }
      const uint32_t length = ReadU32(payload.data() + pos);
      pos += 4;
      if (!need(length)) {
        return Status::InvalidArgument("retained frame: truncated pair");
      }
      side->assign(payload, pos, length);
      pos += length;
    }
    message.pairs.push_back(std::move(pair));
  }
  return message;
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

std::string EncodeEvents(const EventsMessage& message) {
  json::Object root;
  root["variant"] = json::Value(message.variant);
  root["records"] = json::Value(message.records);
  root["jsonl"] = json::Value(message.jsonl);
  return json::Dump(json::Value(std::move(root)), /*indent=*/0);
}

Result<EventsMessage> DecodeEvents(const std::string& payload) {
  Result<json::Object> root = ParseObject(payload, "events");
  if (!root.ok()) return root.status();
  EventsMessage message;
  message.variant = U64Field(*root, "variant");
  message.records = U64Field(*root, "records");
  message.jsonl = StringField(*root, "jsonl");
  return message;
}

}  // namespace gsmb::dist
