// The coordinator side of the distributed tier (gsmb/remote.h): spawns
// worker processes, verifies each worker's loaded preparation against the
// shipped snapshot, and fans variants out over the wire protocol with
// pull-model (work-stealing) dispatch and bounded retry on worker death.
//
// All process management of the repo lives in src/dist/ (lint rule
// raw-process): fork/exec with pipes on stdin/stdout, a poll() event loop
// over the worker read ends, SIGKILL + waitpid on timeout/teardown.

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/wire.h"
#include "gsmb/log.h"
#include "gsmb/digest.h"
#include "gsmb/prepared.h"
#include "gsmb/remote.h"
#include "gsmb/snapshot.h"
#include "util/stopwatch.h"

namespace gsmb {

namespace {

// ---------------------------------------------------------------------------
// Worker processes
// ---------------------------------------------------------------------------

struct WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker (worker stdin)
  int from_fd = -1;  // worker stdout -> coordinator
  std::string rbuf;  // partial frames read from the worker
  bool ready = false;
  bool dead = false;
  /// Variant index currently dispatched to this worker; -1 idle.
  long long in_flight = -1;
  uint64_t results = 0;
  bool fault_fired = false;
  Stopwatch activity;
};

void CloseFd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// fork/exec one worker with pipes on its stdin/stdout. The worker
/// inherits stderr, so its diagnostics land on the coordinator's stderr.
Status SpawnWorker(const std::string& command,
                   const std::vector<std::string>& args, WorkerProc* worker) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      if (fd >= 0) ::close(fd);
    }
    return Status::Internal(std::string("coordinator: pipe failed: ") +
                            std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    return Status::Internal(std::string("coordinator: fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdin/stdout and become the worker.
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(command.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(command.c_str(), argv.data());
    // exec failed; stdout is the protocol pipe, so exit silently — the
    // coordinator sees EOF-before-hello and reports the command.
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  worker->pid = pid;
  worker->to_fd = to_child[1];
  worker->from_fd = from_child[0];
  return Status::Ok();
}

void ReapWorker(WorkerProc& worker, bool kill_first) {
  if (worker.pid < 0) return;
  if (kill_first) ::kill(worker.pid, SIGKILL);
  int status = 0;
  ::waitpid(worker.pid, &status, 0);
  worker.pid = -1;
  CloseFd(worker.to_fd);
  CloseFd(worker.from_fd);
  worker.dead = true;
}

std::string SelfExecutable() {
  std::error_code ec;
  std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string() : self.string();
}

std::string TempSnapshotPath() {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) dir = ".";
  const uint64_t unique = counter.fetch_add(1, std::memory_order_relaxed);
  return (dir / ("gsmb_prepared_" + std::to_string(::getpid()) + "_" +
                 std::to_string(unique) + ".snapshot"))
      .string();
}

// ---------------------------------------------------------------------------
// The dispatch loop
// ---------------------------------------------------------------------------

struct VariantOutcome {
  Status status{StatusCode::kInternal, "never dispatched"};
  JobResult result;
};

struct DistStats {
  size_t workers = 0;
  size_t deaths = 0;
  size_t retries = 0;
  uint64_t worker_events = 0;
  size_t snapshot_loads = 0;
};

/// Runs `specs` (already labelled/validated variants) over
/// `options.num_workers` worker processes sharing `snapshot_path`.
/// Per-variant failures land in the outcomes; a non-OK return means the
/// sweep could not run at all.
Status RunJobsRemote(const std::vector<JobSpec>& specs,
                     const PreparedSnapshotInfo& snapshot,
                     const std::string& snapshot_path,
                     const RemoteOptions& options,
                     std::vector<VariantOutcome>* outcomes,
                     DistStats* stats) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("remote: num_workers must be >= 1");
  }
  std::string command = options.worker_command;
  if (command.empty()) command = SelfExecutable();
  if (command.empty()) {
    return Status::InvalidArgument(
        "remote: worker_command is empty and /proc/self/exe is not "
        "readable — name the worker binary explicitly");
  }

  // A worker that died mid-write must surface as a write error the event
  // loop handles, not a SIGPIPE kill of the coordinator.
  std::signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> worker_args = {"worker"};
  if (!snapshot_path.empty()) {
    worker_args.push_back("--snapshot-in");
    worker_args.push_back(snapshot_path);
  }

  const size_t num_workers = std::min(options.num_workers, specs.size() == 0
                                                               ? size_t{1}
                                                               : specs.size());
  std::vector<WorkerProc> workers(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    Status spawned = SpawnWorker(command, worker_args, &workers[w]);
    if (!spawned.ok()) {
      for (WorkerProc& worker : workers) ReapWorker(worker, true);
      return spawned;
    }
  }
  stats->workers = num_workers;
  GSMB_LOG_INFO("dist.sweep.start", {"workers", num_workers},
                {"variants", specs.size()});

  outcomes->assign(specs.size(), VariantOutcome{});
  std::vector<size_t> attempts(specs.size(), 0);
  std::deque<size_t> requeued;
  // Retained pairs arrive before their result frame; parked here until
  // the result claims them (and dropped on a retry after worker death).
  std::map<uint64_t, std::vector<RetainedPair>> pending_retained;
  size_t next_fresh = 0;
  size_t completed = 0;
  bool any_ready = false;
  Status fatal = Status::Ok();

  auto fail_variant = [&](size_t variant, const std::string& why) {
    (*outcomes)[variant].status = Status::Internal(why);
    pending_retained.erase(variant);
    ++completed;
  };

  // Pull-model dispatch = work stealing: the next unclaimed variant goes
  // to whichever worker asks first. Requeued (retried) variants win over
  // fresh ones so a death is healed promptly.
  auto dispatch_next = [&](WorkerProc& worker) -> bool {
    if (!fatal.ok()) return true;
    long long variant = -1;
    if (!requeued.empty()) {
      variant = static_cast<long long>(requeued.front());
      requeued.pop_front();
    } else if (next_fresh < specs.size()) {
      variant = static_cast<long long>(next_fresh++);
    }
    if (variant < 0) return true;  // nothing left; worker idles until
                                   // shutdown
    ++attempts[static_cast<size_t>(variant)];
    dist::JobMessage job;
    job.variant = static_cast<uint64_t>(variant);
    job.spec = specs[static_cast<size_t>(variant)];
    worker.in_flight = variant;
    worker.activity.Restart();
    return dist::WriteFrame(worker.to_fd, dist::FrameType::kJob,
                            dist::EncodeJob(job))
        .ok();  // a failed write = the worker is dying; poll() reports it
  };

  auto on_worker_death = [&](size_t index) {
    WorkerProc& worker = workers[index];
    ReapWorker(worker, /*kill_first=*/false);
    ++stats->deaths;
    GSMB_LOG_WARN("dist.worker.died", {"worker", index},
                  {"in_flight", worker.in_flight});
    if (worker.in_flight >= 0) {
      const size_t variant = static_cast<size_t>(worker.in_flight);
      worker.in_flight = -1;
      pending_retained.erase(variant);
      if (attempts[variant] <= options.max_retries) {
        ++stats->retries;
        requeued.push_back(variant);
      } else {
        fail_variant(variant,
                     "worker process died while running this variant (" +
                         std::to_string(attempts[variant]) +
                         " attempt(s), retry budget " +
                         std::to_string(options.max_retries) + ")");
      }
    }
    if (!any_ready) {
      // Died before its hello — most likely the exec itself failed.
      bool all_dead = true;
      for (const WorkerProc& w : workers) all_dead &= w.dead;
      if (all_dead) {
        fatal = Status::Internal(
            "remote: no worker became ready (worker command '" + command +
            "' failed to start or crashed during initialisation)");
      }
    }
  };

  // One frame from worker `index`; false = protocol violation (the worker
  // is killed and handled as a death).
  auto handle_frame = [&](size_t index, const dist::Frame& frame) -> bool {
    WorkerProc& worker = workers[index];
    switch (frame.type) {
      case dist::FrameType::kHello: {
        Result<dist::HelloMessage> hello = dist::DecodeHello(frame.payload);
        if (!hello.ok()) return false;
        if (!hello->ok) {
          fatal = Status::Internal("remote: worker " + std::to_string(index) +
                                   " failed to initialise: " + hello->error);
          return false;
        }
        if (!snapshot_path.empty()) {
          // The verification seam: the worker proves it loaded the exact
          // preparation the coordinator shipped.
          if (hello->cache_key != snapshot.cache_key ||
              hello->dataset_fingerprint != snapshot.dataset_fingerprint ||
              hello->prepared_digest != snapshot.prepared_digest) {
            fatal = Status::Internal(
                "remote: worker " + std::to_string(index) +
                " loaded a different preparation than the shipped snapshot "
                "(worker prepared_digest " +
                obs::DigestHex(hello->prepared_digest) + " / fingerprint " +
                obs::DigestHex(hello->dataset_fingerprint) +
                ", snapshot prepared_digest " +
                obs::DigestHex(snapshot.prepared_digest) + " / fingerprint " +
                obs::DigestHex(snapshot.dataset_fingerprint) + ")");
            return false;
          }
          ++stats->snapshot_loads;
        }
        worker.ready = true;
        any_ready = true;
        return dispatch_next(worker);
      }
      case dist::FrameType::kRetained: {
        Result<dist::RetainedMessage> retained =
            dist::DecodeRetained(frame.payload);
        if (!retained.ok()) return false;
        worker.activity.Restart();
        pending_retained[retained->variant] = std::move(retained->pairs);
        return true;
      }
      case dist::FrameType::kEvents: {
        Result<dist::EventsMessage> events = dist::DecodeEvents(frame.payload);
        if (!events.ok()) return false;
        worker.activity.Restart();
        stats->worker_events += events->records;
        GSMB_LOG_DEBUG("dist.worker.events", {"worker", index},
                       {"variant", events->variant},
                       {"records", events->records});
        return true;
      }
      case dist::FrameType::kResult: {
        Result<dist::ResultMessage> message = dist::DecodeResult(frame.payload);
        if (!message.ok()) return false;
        if (worker.in_flight < 0) return false;  // result for nothing
        // The coordinator's dispatch record is authoritative; a worker
        // answering for a different variant is a protocol violation.
        const size_t variant = static_cast<size_t>(worker.in_flight);
        if (message->status.ok() && message->variant != variant) return false;
        worker.in_flight = -1;
        ++worker.results;
        VariantOutcome& outcome = (*outcomes)[variant];
        outcome.status = message->status;
        if (message->status.ok()) {
          outcome.result = std::move(message->result);
          auto parked = pending_retained.find(variant);
          if (parked != pending_retained.end()) {
            outcome.result.retained = std::move(parked->second);
            pending_retained.erase(parked);
          }
          outcome.result.telemetry
              .counters["dist.worker.prepare.miss"] += message->prepare_misses;
        }
        ++completed;
        const bool fire_fault =
            options.fault.kill_worker == static_cast<int>(index) &&
            !worker.fault_fired && worker.results >= options.fault.after_results;
        const bool dispatched = dispatch_next(worker);
        if (fire_fault) {
          // Deterministic mid-sweep death: the variant just dispatched
          // above is lost with the worker.
          worker.fault_fired = true;
          ::kill(worker.pid, SIGKILL);
        }
        return dispatched;
      }
      default:
        return false;  // worker sent a coordinator-to-worker frame type
    }
  };

  // The event loop: poll all live worker pipes, drain frames, dispatch.
  while (fatal.ok() && completed < specs.size()) {
    std::vector<pollfd> fds;
    std::vector<size_t> fd_owner;
    for (size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].dead) continue;
      fds.push_back(pollfd{workers[w].from_fd, POLLIN, 0});
      fd_owner.push_back(w);
    }
    if (fds.empty()) {
      // Every worker is gone; whatever is incomplete can never finish.
      for (size_t v = 0; v < specs.size(); ++v) {
        if ((*outcomes)[v].status.code() == StatusCode::kInternal &&
            (*outcomes)[v].status.message() == "never dispatched") {
          fail_variant(v, "all " + std::to_string(num_workers) +
                              " worker process(es) died before this variant "
                              "could run");
        }
      }
      break;
    }

    const int polled = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (polled < 0 && errno != EINTR) {
      fatal = Status::Internal(std::string("coordinator: poll failed: ") +
                               std::strerror(errno));
      break;
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      const size_t w = fd_owner[i];
      if (workers[w].dead) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[65536];
      const ssize_t n = ::read(workers[w].from_fd, chunk, sizeof chunk);
      if (n > 0) {
        workers[w].rbuf.append(chunk, static_cast<size_t>(n));
        dist::Frame frame;
        for (;;) {
          Result<bool> extracted =
              dist::ExtractFrame(&workers[w].rbuf, &frame);
          if (!extracted.ok() || (*extracted && !handle_frame(w, frame))) {
            ReapWorker(workers[w], /*kill_first=*/true);
            on_worker_death(w);
            break;
          }
          if (!*extracted) break;
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        on_worker_death(w);
      }
    }

    // Hung-worker watchdog: an in-flight variant past the budget costs
    // the worker its life; the death path requeues or fails the variant.
    if (options.worker_timeout_seconds > 0) {
      for (size_t w = 0; w < workers.size(); ++w) {
        if (workers[w].dead || workers[w].in_flight < 0) continue;
        if (workers[w].activity.ElapsedSeconds() >
            options.worker_timeout_seconds) {
          GSMB_LOG_WARN("dist.worker.timeout", {"worker", w},
                        {"variant", workers[w].in_flight});
          ReapWorker(workers[w], /*kill_first=*/true);
          on_worker_death(w);
        }
      }
    }
  }

  // Teardown: polite shutdown frames, then reap everything.
  for (WorkerProc& worker : workers) {
    if (worker.dead) continue;
    (void)dist::WriteFrame(worker.to_fd, dist::FrameType::kShutdown, "");
    CloseFd(worker.to_fd);
    ReapWorker(worker, /*kill_first=*/false);
  }
  return fatal;
}

// ---------------------------------------------------------------------------
// Snapshot resolution shared by RunSweepRemote and the remote backend
// ---------------------------------------------------------------------------

struct ResolvedSnapshot {
  PreparedSnapshotInfo info;
  std::string path;
  bool temporary = false;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double prepare_seconds = 0.0;
};

/// Either verifies a caller-supplied snapshot against the base spec
/// (contradiction error naming both sides) or prepares the base once and
/// writes a temporary snapshot for the workers.
Result<ResolvedSnapshot> ResolveSnapshot(const JobSpec& base,
                                         const RemoteOptions& options) {
  ResolvedSnapshot resolved;
  if (!options.snapshot_path.empty()) {
    Result<PreparedSnapshotInfo> info =
        ReadPreparedSnapshotInfo(options.snapshot_path);
    if (!info.ok()) return info.status();
    const std::string spec_key = PrepareCacheKey(base);
    if (info->cache_key != spec_key) {
      return Status::InvalidArgument(
          "remote: snapshot '" + options.snapshot_path +
          "' was prepared for a different dataset+blocking than the spec: "
          "snapshot cache key " + info->cache_key +
          " (dataset_fingerprint " +
          obs::DigestHex(info->dataset_fingerprint) + ", prepared_digest " +
          obs::DigestHex(info->prepared_digest) +
          ") vs spec cache key " + spec_key);
    }
    resolved.info = *info;
    resolved.path = options.snapshot_path;
    resolved.prepare_seconds = info->prepare_seconds;
    return resolved;
  }

  // No snapshot supplied: the coordinator pays the ONE preparation of the
  // whole distributed sweep and ships it as a temporary file.
  Engine engine;
  const PrepareCacheStats before = engine.prepare_cache_stats();
  Result<PreparedHandle> prepared = engine.Prepare(base);
  if (!prepared.ok()) return prepared.status();
  const PrepareCacheStats after = engine.prepare_cache_stats();
  resolved.cache_hits = after.hits - before.hits;
  resolved.cache_misses = after.misses - before.misses;
  resolved.prepare_seconds = (*prepared)->prepare_seconds;
  resolved.path = TempSnapshotPath();
  resolved.temporary = true;
  Status saved = SavePreparedSnapshot(**prepared, resolved.path);
  if (!saved.ok()) return saved;
  resolved.info.cache_key = (*prepared)->cache_key;
  resolved.info.dataset_fingerprint = (*prepared)->dataset_fingerprint;
  resolved.info.prepared_digest = (*prepared)->prepared_digest;
  resolved.info.prepare_seconds = (*prepared)->prepare_seconds;
  return resolved;
}

void RemoveIfTemporary(const ResolvedSnapshot& snapshot) {
  if (!snapshot.temporary) return;
  std::error_code ec;
  std::filesystem::remove(snapshot.path, ec);
}

}  // namespace

// ---------------------------------------------------------------------------
// RunSweepRemote
// ---------------------------------------------------------------------------

Result<SweepResult> RunSweepRemote(const SweepSpec& sweep,
                                   const RemoteOptions& options) {
  Status valid = sweep.Validate();
  if (!valid.ok()) return valid;

  Stopwatch total_watch;
  Result<ResolvedSnapshot> snapshot = ResolveSnapshot(sweep.base, options);
  if (!snapshot.ok()) return snapshot.status();

  if (!sweep.retained_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(sweep.retained_dir, ec);
    if (ec) {
      RemoveIfTemporary(*snapshot);
      return Status::NotFound("cannot create sweep.retained_dir '" +
                              sweep.retained_dir + "': " + ec.message());
    }
  }

  std::vector<JobSpec> variants = sweep.Expand();
  SweepResult result;
  result.variants.resize(variants.size());
  for (size_t i = 0; i < variants.size(); ++i) {
    SweepVariant& out = result.variants[i];
    out.spec = std::move(variants[i]);
    out.label = SweepVariantLabel(out.spec);
    if (!sweep.retained_dir.empty()) {
      out.spec.output.retained_csv =
          sweep.retained_dir + "/" + out.label + ".csv";
    }
  }

  std::vector<JobSpec> specs;
  specs.reserve(result.variants.size());
  for (const SweepVariant& variant : result.variants) {
    specs.push_back(variant.spec);
  }

  std::vector<VariantOutcome> outcomes;
  DistStats stats;
  Status ran = RunJobsRemote(specs, snapshot->info, snapshot->path, options,
                             &outcomes, &stats);
  RemoveIfTemporary(*snapshot);
  if (!ran.ok()) return ran;

  result.cache_hits = snapshot->cache_hits;
  result.cache_misses = snapshot->cache_misses;
  result.prepare_seconds = snapshot->prepare_seconds;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    result.variants[i].status = outcomes[i].status;
    result.variants[i].result = std::move(outcomes[i].result);
  }

  // Same deterministic fold as the in-process RunSweep (expansion order),
  // plus the distributed tier's own counters. Telemetry is perf-class in
  // report diffs, so the dist.* counters never show up as semantic drift
  // against a single-process report.
  for (const SweepVariant& variant : result.variants) {
    if (variant.status.ok()) {
      result.telemetry.MergeFrom(variant.result.telemetry);
    }
  }
  result.telemetry.counters["prepare.cache.hit"] += result.cache_hits;
  result.telemetry.counters["prepare.cache.miss"] += result.cache_misses;
  result.telemetry.counters["dist.workers"] += stats.workers;
  result.telemetry.counters["dist.worker.deaths"] += stats.deaths;
  result.telemetry.counters["dist.retries"] += stats.retries;
  result.telemetry.counters["dist.worker.events"] += stats.worker_events;
  result.telemetry.counters["dist.snapshot.loads"] += stats.snapshot_loads;

  result.total_seconds = total_watch.ElapsedSeconds();
  GSMB_LOG_INFO("dist.sweep.done", {"variants", result.variants.size()},
                {"deaths", stats.deaths}, {"retries", stats.retries});
  return result;
}

// ---------------------------------------------------------------------------
// The `remote` executor backend
// ---------------------------------------------------------------------------

namespace {

class RemoteExecutor : public Executor {
 public:
  explicit RemoteExecutor(RemoteOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "remote"; }

  Status Supports(const JobSpec& spec) const override {
    if (spec.execution.mode == ExecutionMode::kServing) {
      return Status::InvalidArgument(
          "the remote backend cannot host a serving session (sessions are "
          "interactive and process-local); use execution.mode batch, "
          "streaming or auto");
    }
    return Status::Ok();
  }

  Result<JobResult> Execute(const JobSpec& spec) const override {
    Result<ResolvedSnapshot> snapshot = ResolveSnapshot(spec, options_);
    if (!snapshot.ok()) return snapshot.status();
    RemoteOptions options = options_;
    options.num_workers = 1;
    std::vector<VariantOutcome> outcomes;
    DistStats stats;
    Status ran = RunJobsRemote({spec}, snapshot->info, snapshot->path,
                               options, &outcomes, &stats);
    RemoveIfTemporary(*snapshot);
    if (!ran.ok()) return ran;
    if (!outcomes[0].status.ok()) return outcomes[0].status;
    return std::move(outcomes[0].result);
  }

 private:
  RemoteOptions options_;
};

}  // namespace

std::unique_ptr<Executor> MakeRemoteBackend(RemoteOptions options) {
  return std::make_unique<RemoteExecutor>(std::move(options));
}

}  // namespace gsmb
