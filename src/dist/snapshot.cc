// Prepared-snapshot save/load (gsmb/snapshot.h).
//
// Layout (native-endian; only the preparation's sources of truth are
// stored — derived state is rebuilt on load through the same code path a
// cold Engine::Prepare takes, so the file cannot drift from the build):
//   magic       "GSMBPS01"
//   header      cache_key, dataset_fingerprint, prepared_digest,
//               prepare_seconds
//   inputs      dirty flag, E1 profiles, E2 profiles (external id +
//               attribute name/value pairs, in internal-id order),
//               ground truth (dirty flag + pairs in insertion order)
//   blocks      clean_clean flag, stream name, |E1|, |E2|, post-purge/
//               filter blocks (key + left ids + right ids, in order)
//
// Every length field is validated against the bytes remaining in the file
// before any container is sized from it, every entity id against the
// declared collection sizes — a corrupt file fails with a diagnostic, not
// UB. After the rebuild, both header digests are recomputed and compared:
// the load is trusted only because it proves it reproduced the exact
// preparation the save described.

#include "gsmb/snapshot.h"

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gsmb/digest.h"
#include "stream/streaming_dataset.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

void PutBytes(std::ostream& out, const void* data, size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

void PutU8(std::ostream& out, uint8_t v) { PutBytes(out, &v, sizeof v); }
void PutU32(std::ostream& out, uint32_t v) { PutBytes(out, &v, sizeof v); }
void PutU64(std::ostream& out, uint64_t v) { PutBytes(out, &v, sizeof v); }
void PutF64(std::ostream& out, double v) { PutBytes(out, &v, sizeof v); }

void PutString(std::ostream& out, const std::string& s) {
  PutU64(out, s.size());
  PutBytes(out, s.data(), s.size());
}

void PutCollection(std::ostream& out, const EntityCollection& collection) {
  PutString(out, collection.name());
  PutU64(out, collection.size());
  for (const EntityProfile& profile : collection.profiles()) {
    PutString(out, profile.external_id());
    PutU64(out, profile.attributes().size());
    for (const Attribute& attribute : profile.attributes()) {
      PutString(out, attribute.name);
      PutString(out, attribute.value);
    }
  }
}

// Bounds-checked reader (same discipline as the serving snapshot): length
// fields are validated against the remaining file size BEFORE any
// container is sized from them, so a garbage count fails cleanly instead
// of attempting a multi-gigabyte allocation.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {
    const std::istream::pos_type pos = in_.tellg();
    in_.seekg(0, std::ios::end);
    size_ = static_cast<uint64_t>(in_.tellg());
    in_.seekg(pos);
  }

  uint64_t file_bytes() const { return size_; }

  void Bytes(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in_) Corrupt();
  }

  uint8_t U8() { return Scalar<uint8_t>(); }
  uint32_t U32() { return Scalar<uint32_t>(); }
  uint64_t U64() { return Scalar<uint64_t>(); }
  double F64() { return Scalar<double>(); }

  /// Reads an element count whose elements occupy at least
  /// `min_element_size` bytes each; rejects counts the file cannot hold.
  uint64_t Count(uint64_t min_element_size) {
    const uint64_t count = U64();
    if (min_element_size == 0) min_element_size = 1;
    if (count > Remaining() / min_element_size) Corrupt();
    return count;
  }

  std::string String() {
    const uint64_t size = Count(1);
    std::string s(size, '\0');
    if (size > 0) Bytes(s.data(), size);
    return s;
  }

 private:
  template <typename T>
  T Scalar() {
    T v;
    Bytes(&v, sizeof v);
    return v;
  }

  uint64_t Remaining() const {
    const auto pos = static_cast<uint64_t>(in_.tellg());
    return pos > size_ ? 0 : size_ - pos;
  }

  [[noreturn]] static void Corrupt() {
    throw std::runtime_error("truncated or corrupt file");
  }

  std::istream& in_;
  uint64_t size_ = 0;
};

/// Checks the 8 magic bytes, distinguishing "not a snapshot at all" from
/// "a snapshot of another format version".
Status CheckMagic(SnapshotReader& reader, const std::string& path) {
  char magic[8];
  reader.Bytes(magic, sizeof magic);
  const std::string_view got(magic, sizeof magic);
  if (got == kPreparedSnapshotMagic) return Status::Ok();
  if (got.substr(0, 6) == kPreparedSnapshotMagic.substr(0, 6)) {
    return Status::InvalidArgument(
        "prepared snapshot '" + path + "': unsupported format version '" +
        std::string(got) + "' (this build reads '" +
        std::string(kPreparedSnapshotMagic) + "')");
  }
  return Status::InvalidArgument("prepared snapshot '" + path +
                                 "': not a prepared snapshot (bad magic)");
}

/// Header fields after the magic, shared by Load and ReadInfo.
PreparedSnapshotInfo ReadHeader(SnapshotReader& reader) {
  PreparedSnapshotInfo info;
  info.cache_key = reader.String();
  info.dataset_fingerprint = reader.U64();
  info.prepared_digest = reader.U64();
  info.prepare_seconds = reader.F64();
  info.file_bytes = reader.file_bytes();
  return info;
}

EntityCollection ReadCollection(SnapshotReader& reader) {
  EntityCollection collection(reader.String());
  // A profile is at least one external-id length field + one attr count.
  const uint64_t count = reader.Count(16);
  collection.Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    EntityProfile profile(reader.String());
    const uint64_t num_attributes = reader.Count(16);
    for (uint64_t a = 0; a < num_attributes; ++a) {
      std::string attr_name = reader.String();
      std::string attr_value = reader.String();
      profile.AddAttribute(std::move(attr_name), std::move(attr_value));
    }
    collection.Add(std::move(profile));
  }
  return collection;
}

}  // namespace

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

Status SavePreparedSnapshot(const PreparedInputs& prepared,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("prepared snapshot: cannot open '" + path +
                            "' for writing");
  }

  PutBytes(out, kPreparedSnapshotMagic.data(), kPreparedSnapshotMagic.size());
  PutString(out, prepared.cache_key);
  PutU64(out, prepared.dataset_fingerprint);
  PutU64(out, prepared.prepared_digest);
  PutF64(out, prepared.prepare_seconds);

  PutU8(out, prepared.inputs.dirty ? 1 : 0);
  PutCollection(out, prepared.inputs.e1);
  PutCollection(out, prepared.inputs.e2);

  const GroundTruth& gt = prepared.inputs.ground_truth;
  PutU8(out, gt.dirty() ? 1 : 0);
  PutU64(out, gt.size());
  for (const MatchPair& pair : gt.pairs()) {
    PutU32(out, pair.left);
    PutU32(out, pair.right);
  }

  const BlockCollection& blocks = prepared.stream.blocks;
  PutU8(out, blocks.clean_clean() ? 1 : 0);
  PutString(out, prepared.stream.name);
  PutU64(out, blocks.num_left_entities());
  PutU64(out, blocks.num_right_entities());
  PutU64(out, blocks.size());
  for (const Block& block : blocks.blocks()) {
    PutString(out, block.key);
    PutU64(out, block.left.size());
    for (EntityId id : block.left) PutU32(out, id);
    PutU64(out, block.right.size());
    for (EntityId id : block.right) PutU32(out, id);
  }

  out.flush();
  if (!out.good()) {
    return Status::Internal("prepared snapshot: write to '" + path +
                            "' failed");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Header peek
// ---------------------------------------------------------------------------

Result<PreparedSnapshotInfo> ReadPreparedSnapshotInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("prepared snapshot: cannot open '" + path + "'");
  }
  try {
    SnapshotReader reader(in);
    Status magic = CheckMagic(reader, path);
    if (!magic.ok()) return magic;
    return ReadHeader(reader);
  } catch (const std::exception& e) {
    return Status::InvalidArgument("prepared snapshot '" + path +
                                   "': " + e.what());
  }
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

Result<PreparedHandle> LoadPreparedSnapshot(const std::string& path,
                                            size_t num_threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("prepared snapshot: cannot open '" + path + "'");
  }
  if (num_threads == 0) num_threads = HardwareThreads();

  Stopwatch load_watch;
  PreparedSnapshotInfo info;
  auto prepared = std::make_shared<PreparedInputs>();
  try {
    SnapshotReader reader(in);
    Status magic = CheckMagic(reader, path);
    if (!magic.ok()) return magic;
    info = ReadHeader(reader);

    JobInputs& inputs = prepared->inputs;
    inputs.dirty = reader.U8() != 0;
    inputs.e1 = ReadCollection(reader);
    inputs.e2 = ReadCollection(reader);

    const bool gt_dirty = reader.U8() != 0;
    GroundTruth ground_truth(gt_dirty);
    const uint64_t num_matches = reader.Count(8);
    const uint64_t left_bound = inputs.e1.size();
    const uint64_t right_bound =
        inputs.dirty ? inputs.e1.size() : inputs.e2.size();
    for (uint64_t i = 0; i < num_matches; ++i) {
      const uint32_t left = reader.U32();
      const uint32_t right = reader.U32();
      if (left >= left_bound || right >= right_bound) {
        return Status::InvalidArgument(
            "prepared snapshot '" + path +
            "': ground-truth pair references an entity id out of range");
      }
      ground_truth.AddMatch(left, right);
    }
    inputs.ground_truth = ground_truth;

    const bool clean_clean = reader.U8() != 0;
    const std::string stream_name = reader.String();
    const uint64_t num_left = reader.U64();
    const uint64_t num_right = reader.U64();
    if (num_left != inputs.e1.size() ||
        num_right != (inputs.dirty ? 0 : inputs.e2.size())) {
      return Status::InvalidArgument(
          "prepared snapshot '" + path +
          "': block collection entity counts disagree with the stored "
          "profiles");
    }
    BlockCollection blocks(clean_clean, num_left, num_right);
    const uint64_t num_blocks = reader.Count(24);
    blocks.Reserve(num_blocks);
    const uint64_t member_bound_left = num_left;
    const uint64_t member_bound_right = clean_clean ? num_right : num_left;
    for (uint64_t b = 0; b < num_blocks; ++b) {
      Block block;
      block.key = reader.String();
      const uint64_t num_left_members = reader.Count(4);
      block.left.reserve(num_left_members);
      for (uint64_t i = 0; i < num_left_members; ++i) {
        const uint32_t id = reader.U32();
        if (id >= member_bound_left) {
          return Status::InvalidArgument(
              "prepared snapshot '" + path +
              "': block member id out of range");
        }
        block.left.push_back(id);
      }
      const uint64_t num_right_members = reader.Count(4);
      block.right.reserve(num_right_members);
      for (uint64_t i = 0; i < num_right_members; ++i) {
        const uint32_t id = reader.U32();
        if (id >= member_bound_right) {
          return Status::InvalidArgument(
              "prepared snapshot '" + path +
              "': block member id out of range");
        }
        block.right.push_back(id);
      }
      blocks.Add(std::move(block));
    }

    // Rebuild the derived state — EntityIndex, stats, the counting sweep —
    // through the exact code path a cold Prepare takes. Deterministic at
    // any thread count, so the rebuilt stream is bit-identical to the one
    // the snapshot was saved from.
    prepared->stream = PrepareStreamingFromBlocks(
        stream_name, std::move(blocks), std::move(ground_truth), num_threads);
  } catch (const std::exception& e) {
    return Status::InvalidArgument("prepared snapshot '" + path +
                                   "': " + e.what());
  }

  // Verify, don't trust: a file corrupted into something parseable must
  // not execute. Both digests are recomputed over the REBUILT state.
  const uint64_t fingerprint = obs::DatasetFingerprint(prepared->inputs);
  if (fingerprint != info.dataset_fingerprint) {
    return Status::Internal(
        "prepared snapshot '" + path +
        "': dataset fingerprint mismatch after load (stored " +
        obs::DigestHex(info.dataset_fingerprint) + ", rebuilt " +
        obs::DigestHex(fingerprint) + ") — the file is corrupt");
  }
  const uint64_t digest = obs::PreparedStreamDigest(prepared->stream);
  if (digest != info.prepared_digest) {
    return Status::Internal(
        "prepared snapshot '" + path +
        "': prepared digest mismatch after load (stored " +
        obs::DigestHex(info.prepared_digest) + ", rebuilt " +
        obs::DigestHex(digest) + ") — the file is corrupt");
  }

  prepared->cache_key = info.cache_key;
  prepared->dataset_fingerprint = fingerprint;
  prepared->prepared_digest = digest;
  // The handle reports the LOAD cost as its one-off preparation cost: that
  // is what this process actually paid, and what flows into
  // JobResult::blocking_seconds for runs executed against the handle.
  prepared->prepare_seconds = load_watch.ElapsedSeconds();
  return PreparedHandle(std::move(prepared));
}

}  // namespace gsmb
