// The distributed tier's wire protocol: length-prefixed frames over pipe
// (or local-socket) file descriptors, plus the JSON/binary codecs for the
// messages the coordinator and workers exchange.
//
// Frame layout: u32 little-endian payload length | u8 frame type | payload.
// Specs and results reuse the api/json model (the same serializer the
// JobSpec layer uses, so doubles round-trip bit-exactly via shortest-
// round-trip formatting); retained pairs travel in a compact binary frame
// — they dominate the payload bytes and need no generality.
//
// Conversation (worker side is gsmb/remote.h RunWorker, coordinator side
// src/dist/coordinator.cc):
//
//   worker -> coordinator   kHello     digests of the loaded preparation;
//                                      the coordinator VERIFIES them
//                                      against the shipped snapshot before
//                                      dispatching any work
//   coordinator -> worker   kJob       variant index + serialized JobSpec
//   worker -> coordinator   kRetained  binary retained pairs (only when
//                                      the spec keeps them)
//   worker -> coordinator   kEvents    the job's structured event log as
//                                      JSONL, batched per job
//   worker -> coordinator   kResult    serialized JobResult (or a Status)
//                                      — the per-variant completion marker
//   coordinator -> worker   kShutdown  drain and exit 0

#ifndef GSMB_DIST_WIRE_H_
#define GSMB_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/json.h"
#include "gsmb/engine.h"
#include "gsmb/status.h"

namespace gsmb::dist {

enum class FrameType : uint8_t {
  kHello = 1,
  kJob = 2,
  kResult = 3,
  kRetained = 4,
  kEvents = 5,
  kShutdown = 6,
};

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::string payload;
};

/// Upper bound either side accepts for one payload; a length beyond it is
/// treated as a corrupt stream, not an allocation request.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// Writes one complete frame to `fd` (blocking, resumes short writes).
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Pops one complete frame off the front of `buffer` (bytes as read from
/// the peer, in arrival order). Returns true and fills `out` when a full
/// frame was available; false when more bytes are needed. A malformed
/// header (unknown type, oversized length) is an error.
Result<bool> ExtractFrame(std::string* buffer, Frame* out);

// -- Message codecs ---------------------------------------------------------

/// kHello payload. `ok == false` reports a worker that failed to
/// initialise (e.g. its snapshot load failed); `error` carries why.
struct HelloMessage {
  bool ok = false;
  std::string error;
  std::string cache_key;
  uint64_t dataset_fingerprint = 0;
  uint64_t prepared_digest = 0;
  bool snapshot_loaded = false;
};

std::string EncodeHello(const HelloMessage& hello);
Result<HelloMessage> DecodeHello(const std::string& payload);

/// kJob payload: which expanded variant this is, and its full spec.
struct JobMessage {
  uint64_t variant = 0;
  JobSpec spec;
};

std::string EncodeJob(const JobMessage& job);
Result<JobMessage> DecodeJob(const std::string& payload);

/// kResult payload: the variant's Status and, when ok, its JobResult
/// (minus the retained pairs, which travel in a kRetained frame) plus the
/// worker's prepare-cache miss delta for this job — the coordinator folds
/// those into `dist.worker.prepare.miss`, the "exactly one preparation
/// total" witness.
struct ResultMessage {
  uint64_t variant = 0;
  Status status;
  JobResult result;
  uint64_t prepare_misses = 0;
};

std::string EncodeResult(const ResultMessage& message);
Result<ResultMessage> DecodeResult(const std::string& payload);

/// kRetained payload: u64 variant | u64 pair count | per pair u32-length-
/// prefixed left and right external ids.
struct RetainedMessage {
  uint64_t variant = 0;
  std::vector<RetainedPair> pairs;
};

std::string EncodeRetained(const RetainedMessage& message);
Result<RetainedMessage> DecodeRetained(const std::string& payload);

/// kEvents payload: the job's event log as JSONL plus its record count.
struct EventsMessage {
  uint64_t variant = 0;
  uint64_t records = 0;
  std::string jsonl;
};

std::string EncodeEvents(const EventsMessage& message);
Result<EventsMessage> DecodeEvents(const std::string& payload);

/// JobResult <-> JSON, round-tripping every field a sweep report reads
/// (metrics, provenance digests, timings, telemetry snapshot) except the
/// retained pairs.
json::Value JobResultToJsonValue(const JobResult& result);
Result<JobResult> JobResultFromJsonValue(const json::Value& value);

}  // namespace gsmb::dist

#endif  // GSMB_DIST_WIRE_H_
