// Digest implementation: platform-stable hashing of datasets, blocked
// preparations and retained-pair sets. See gsmb/digest.h for the
// stability contract (no std::hash anywhere — golden reports are
// compared across machines).

#include "gsmb/digest.h"

#include <cstdio>

#include "blocking/block_collection.h"
#include "er/ground_truth.h"
#include "gsmb/prepared.h"
#include "stream/streaming_dataset.h"

namespace gsmb {
namespace obs {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// Out-of-band separators: attribute values are arbitrary text, so field
// boundaries are marked with bytes hashing loops also feed through FNV.
constexpr unsigned char kFieldSep = 0x1f;   // unit separator
constexpr unsigned char kRecordSep = 0x1e;  // record separator

uint64_t FnvByte(uint64_t h, unsigned char byte) {
  return (h ^ byte) * kFnvPrime;
}

uint64_t FnvBytes(uint64_t h, std::string_view bytes) {
  for (unsigned char c : bytes) h = FnvByte(h, c);
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h = FnvByte(h, static_cast<unsigned char>(value & 0xff));
    value >>= 8;
  }
  return h;
}

uint64_t FnvDouble(uint64_t h, double value) {
  // Bit pattern, not text: exact, locale-free, and -0.0 != 0.0 never
  // arises from the counting code that produces these.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return FnvU64(h, bits);
}

uint64_t FingerprintCollection(uint64_t h, const EntityCollection& entities) {
  h = FnvU64(h, entities.size());
  for (EntityId id = 0; id < entities.size(); ++id) {
    const EntityProfile& profile = entities[id];
    h = FnvBytes(h, profile.external_id());
    h = FnvByte(h, kFieldSep);
    for (const Attribute& attribute : profile.attributes()) {
      h = FnvBytes(h, attribute.name);
      h = FnvByte(h, kFieldSep);
      h = FnvBytes(h, attribute.value);
      h = FnvByte(h, kFieldSep);
    }
    h = FnvByte(h, kRecordSep);
  }
  return h;
}

}  // namespace

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  return Mix64(FnvBytes(kFnvOffset ^ Mix64(seed), bytes));
}

uint64_t HashPair(std::string_view left, std::string_view right) {
  uint64_t h = kFnvOffset;
  h = FnvBytes(h, left);
  h = FnvByte(h, kFieldSep);
  h = FnvBytes(h, right);
  return Mix64(h);
}

std::string DigestHex(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, 16);
}

uint64_t DatasetFingerprint(const JobInputs& inputs) {
  uint64_t h = kFnvOffset;
  h = FnvByte(h, inputs.dirty ? 1 : 0);
  h = FingerprintCollection(h, inputs.e1);
  h = FingerprintCollection(h, inputs.e2);
  h = FnvU64(h, inputs.ground_truth.size());
  for (const MatchPair& match : inputs.ground_truth.pairs()) {
    h = FnvU64(h, match.left);
    h = FnvU64(h, match.right);
  }
  return Mix64(h);
}

uint64_t PreparedStreamDigest(const StreamingDataset& stream) {
  uint64_t h = kFnvOffset;
  const BlockCollection& blocks = stream.blocks;
  h = FnvByte(h, blocks.clean_clean() ? 1 : 0);
  h = FnvU64(h, blocks.num_left_entities());
  h = FnvU64(h, blocks.num_right_entities());
  h = FnvU64(h, blocks.size());
  for (const Block& block : blocks.blocks()) {
    h = FnvBytes(h, block.key);
    h = FnvByte(h, kFieldSep);
    for (EntityId id : block.left) h = FnvU64(h, id);
    h = FnvByte(h, kFieldSep);
    for (EntityId id : block.right) h = FnvU64(h, id);
    h = FnvByte(h, kRecordSep);
  }
  h = FnvU64(h, stream.num_candidates());
  h = FnvDouble(h, stream.stats.total_comparisons);
  h = FnvU64(h, stream.stats.total_occurrences);
  return Mix64(h);
}

}  // namespace obs
}  // namespace gsmb
