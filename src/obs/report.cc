// Run-report generation and diff classification. Reports are built with
// the same insertion-ordered JSON model the spec layer uses, so a report
// is stable, diff-friendly text; comparison happens on parsed values, so
// formatting (indentation, member order) never causes false drift.

#include "gsmb/report.h"

#include "api/json.h"
#include "api/spec_json.h"
#include "gsmb/digest.h"

namespace gsmb {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Building blocks

json::Object MetricsSection(const JobResult& result) {
  json::Object metrics;
  // The paper's vocabulary: PC (pairs completeness) = recall, PQ (pairs
  // quality) = precision.
  metrics["pc"] = json::Value(result.metrics.recall);
  metrics["pq"] = json::Value(result.metrics.precision);
  metrics["f1"] = json::Value(result.metrics.f1);
  metrics["true_positives"] = json::Value(result.metrics.true_positives);
  metrics["retained"] = json::Value(result.metrics.retained);
  return metrics;
}

json::Object ProvenanceSection(const JobResult& result) {
  json::Object provenance;
  provenance["dataset_fingerprint"] =
      json::Value(DigestHex(result.dataset_fingerprint));
  // A backend that never builds the global blocked representation
  // (serving) reports no prepared digest; the key is OMITTED rather than
  // zeroed so cross-backend diffs treat it as not applicable.
  if (result.prepared_digest != 0) {
    provenance["prepared_digest"] =
        json::Value(DigestHex(result.prepared_digest));
  }
  provenance["retained_digest"] =
      json::Value(DigestHex(result.retained_digest));
  provenance["retained_count"] = json::Value(result.retained_count);
  return provenance;
}

json::Object ExecutionSection(const JobResult& result) {
  json::Object execution;
  execution["backend"] = json::Value(result.backend);
  execution["shards_used"] = json::Value(result.shards_used);
  execution["sweeps"] = json::Value(result.sweeps);
  execution["num_blocks"] = json::Value(result.num_blocks);
  execution["num_candidates"] = json::Value(result.num_candidates);
  execution["training_size"] = json::Value(result.training_size);
  execution["retained_csv_rows"] = json::Value(result.retained_csv_rows);
  json::Object timings;
  timings["blocking_seconds"] = json::Value(result.blocking_seconds);
  timings["generate_seconds"] = json::Value(result.generate_seconds);
  timings["feature_seconds"] = json::Value(result.feature_seconds);
  timings["train_seconds"] = json::Value(result.train_seconds);
  timings["classify_seconds"] = json::Value(result.classify_seconds);
  timings["prune_seconds"] = json::Value(result.prune_seconds);
  timings["total_seconds"] = json::Value(result.total_seconds);
  execution["timings"] = json::Value(std::move(timings));
  return execution;
}

json::Object TelemetrySection(const MetricsSnapshot& snapshot) {
  // Re-parse the canonical metrics JSON rather than re-deriving the
  // layout: one serializer, one schema.
  Result<json::Value> parsed = json::Parse(MetricsJson(snapshot));
  if (parsed.ok() && parsed->is_object()) return std::move(parsed->AsObject());
  return json::Object();
}

json::Object EnvironmentSection() {
  json::Object environment;
#if defined(__clang__)
  environment["compiler"] = json::Value("clang");
  environment["compiler_version"] =
      json::Value(std::to_string(__clang_major__) + "." +
                  std::to_string(__clang_minor__));
#elif defined(__GNUC__)
  environment["compiler"] = json::Value("gcc");
  environment["compiler_version"] =
      json::Value(std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__));
#else
  environment["compiler"] = json::Value("unknown");
  environment["compiler_version"] = json::Value("unknown");
#endif
#if defined(__linux__)
  environment["platform"] = json::Value("linux");
#elif defined(__APPLE__)
  environment["platform"] = json::Value("darwin");
#elif defined(_WIN32)
  environment["platform"] = json::Value("windows");
#else
  environment["platform"] = json::Value("unknown");
#endif
#if defined(__x86_64__)
  environment["arch"] = json::Value("x86_64");
#elif defined(__aarch64__)
  environment["arch"] = json::Value("aarch64");
#else
  environment["arch"] = json::Value("unknown");
#endif
#if defined(NDEBUG)
  environment["assertions"] = json::Value(false);
#else
  environment["assertions"] = json::Value(true);
#endif
  environment["spec_version"] = json::Value(kJobSpecVersion);
  return environment;
}

json::Object RunReportObject(const JobSpec& spec, const JobResult& result) {
  json::Object report;
  report["schema"] = json::Value(kRunReportSchema);
  report["schema_version"] = json::Value(kReportSchemaVersion);
  report["spec"] = api::JobSpecToJsonValue(spec);
  report["provenance"] = json::Value(ProvenanceSection(result));
  report["metrics"] = json::Value(MetricsSection(result));
  report["execution"] = json::Value(ExecutionSection(result));
  report["telemetry"] = json::Value(TelemetrySection(result.telemetry));
  report["environment"] = json::Value(EnvironmentSection());
  return report;
}

// ---------------------------------------------------------------------------
// Diff machinery

std::string ScalarText(const json::Value& value) {
  return json::Dump(value, /*indent=*/0);
}

/// Appends "path: A != B" lines for every leaf difference between two
/// parsed values. Object members are matched by key (order ignored);
/// numbers compare exactly — semantic doubles (PC/PQ/F1) are computed
/// from identical integer counts by every backend, so bit-equality is
/// the contract, not an approximation.
void DiffValues(const json::Value& a, const json::Value& b,
                const std::string& path, std::vector<std::string>* out) {
  if (a.kind() != b.kind()) {
    out->push_back(path + ": " + ScalarText(a) + " != " + ScalarText(b));
    return;
  }
  switch (a.kind()) {
    case json::Value::Kind::kObject: {
      const json::Object& oa = a.AsObject();
      const json::Object& ob = b.AsObject();
      for (const auto& [key, value] : oa.members()) {
        const json::Value* other = ob.Find(key);
        if (other == nullptr) {
          out->push_back(path + "." + key + ": present only in A");
        } else {
          DiffValues(value, *other, path + "." + key, out);
        }
      }
      for (const auto& [key, value] : ob.members()) {
        (void)value;
        if (!oa.Contains(key)) {
          out->push_back(path + "." + key + ": present only in B");
        }
      }
      return;
    }
    case json::Value::Kind::kArray: {
      const json::Array& aa = a.AsArray();
      const json::Array& ab = b.AsArray();
      if (aa.size() != ab.size()) {
        out->push_back(path + ": array sizes " + std::to_string(aa.size()) +
                       " != " + std::to_string(ab.size()));
        return;
      }
      for (size_t i = 0; i < aa.size(); ++i) {
        DiffValues(aa[i], ab[i], path + "[" + std::to_string(i) + "]", out);
      }
      return;
    }
    case json::Value::Kind::kNumber:
      if (a.is_u64() && b.is_u64()) {
        if (a.AsU64() != b.AsU64()) {
          out->push_back(path + ": " + ScalarText(a) + " != " +
                         ScalarText(b));
        }
        return;
      }
      if (a.AsDouble() != b.AsDouble()) {
        out->push_back(path + ": " + ScalarText(a) + " != " + ScalarText(b));
      }
      return;
    case json::Value::Kind::kNull:
      return;
    case json::Value::Kind::kBool:
      if (a.AsBool() != b.AsBool()) {
        out->push_back(path + ": " + ScalarText(a) + " != " + ScalarText(b));
      }
      return;
    case json::Value::Kind::kString:
      if (a.AsString() != b.AsString()) {
        out->push_back(path + ": " + ScalarText(a) + " != " + ScalarText(b));
      }
      return;
  }
}

/// The semantic view of a run-report-shaped object: the spec minus its
/// execution/output sections, provenance and metrics. prepared_digest is
/// kept only when BOTH sides report one — a serving run (which never
/// builds the global blocked representation) must diff clean against a
/// batch run of the same spec.
json::Object SemanticView(const json::Object& report,
                          const json::Object& other) {
  json::Object view;
  if (const json::Value* spec = report.Find("spec")) {
    if (spec->is_object()) {
      json::Object effective;
      for (const auto& [key, value] : spec->AsObject().members()) {
        if (key == "execution" || key == "output") continue;
        effective[key] = value;
      }
      view["spec"] = json::Value(std::move(effective));
    }
  }
  if (const json::Value* provenance = report.Find("provenance")) {
    if (provenance->is_object()) {
      json::Object effective;
      const json::Value* other_provenance = other.Find("provenance");
      for (const auto& [key, value] : provenance->AsObject().members()) {
        if (key == "prepared_digest" &&
            (other_provenance == nullptr || !other_provenance->is_object() ||
             !other_provenance->AsObject().Contains(key))) {
          continue;
        }
        effective[key] = value;
      }
      view["provenance"] = json::Value(std::move(effective));
    }
  }
  if (const json::Value* metrics = report.Find("metrics")) {
    view["metrics"] = *metrics;
  }
  return view;
}

/// Perf/informational view: execution (timings, backend, shard shape).
/// Environment and telemetry are deliberately excluded — two machines or
/// two thread counts always differ there, and listing those lines would
/// bury real timing drift.
json::Object PerfView(const json::Object& report) {
  json::Object view;
  if (const json::Value* execution = report.Find("execution")) {
    view["execution"] = *execution;
  }
  return view;
}

void DiffRunReports(const json::Object& a, const json::Object& b,
                    const std::string& path, ReportDiff* diff) {
  DiffValues(json::Value(SemanticView(a, b)), json::Value(SemanticView(b, a)),
             path + "semantic", &diff->semantic);
  DiffValues(json::Value(PerfView(a)), json::Value(PerfView(b)),
             path + "perf", &diff->perf);
}

const json::Value* FindVariant(const json::Array& variants,
                               const std::string& label) {
  for (const json::Value& variant : variants) {
    if (!variant.is_object()) continue;
    const json::Value* candidate = variant.AsObject().Find("label");
    if (candidate != nullptr && candidate->is_string() &&
        candidate->AsString() == label) {
      return &variant;
    }
  }
  return nullptr;
}

Status DiffSweepReports(const json::Object& a, const json::Object& b,
                        ReportDiff* diff) {
  const json::Value* variants_a = a.Find("variants");
  const json::Value* variants_b = b.Find("variants");
  if (variants_a == nullptr || !variants_a->is_array() ||
      variants_b == nullptr || !variants_b->is_array()) {
    return Status::InvalidArgument("sweep report lacks a 'variants' array");
  }
  for (const json::Value& variant : variants_a->AsArray()) {
    if (!variant.is_object()) continue;
    const json::Value* label = variant.AsObject().Find("label");
    const std::string name =
        label != nullptr && label->is_string() ? label->AsString() : "";
    const json::Value* other = FindVariant(variants_b->AsArray(), name);
    if (other == nullptr) {
      diff->semantic.push_back("variant '" + name + "': present only in A");
      continue;
    }
    DiffRunReports(variant.AsObject(), other->AsObject(),
                   "variant '" + name + "' ", diff);
  }
  for (const json::Value& variant : variants_b->AsArray()) {
    if (!variant.is_object()) continue;
    const json::Value* label = variant.AsObject().Find("label");
    const std::string name =
        label != nullptr && label->is_string() ? label->AsString() : "";
    if (FindVariant(variants_a->AsArray(), name) == nullptr) {
      diff->semantic.push_back("variant '" + name + "': present only in B");
    }
  }
  return Status::Ok();
}

}  // namespace

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:
      return "none";
    case DriftKind::kPerfOnly:
      return "perf-only";
    case DriftKind::kSemantic:
      return "semantic";
  }
  return "unknown";
}

std::string RunReportJson(const JobSpec& spec, const JobResult& result) {
  return json::Dump(json::Value(RunReportObject(spec, result))) + "\n";
}

std::string SweepReportJson(const SweepSpec& sweep,
                            const SweepResult& result) {
  json::Object report;
  report["schema"] = json::Value(kSweepReportSchema);
  report["schema_version"] = json::Value(kReportSchemaVersion);
  report["base_spec"] = api::JobSpecToJsonValue(sweep.base);

  json::Array variants;
  for (const SweepVariant& variant : result.variants) {
    json::Object entry;
    entry["label"] = json::Value(variant.label);
    entry["ok"] = json::Value(variant.status.ok());
    if (!variant.status.ok()) {
      entry["error"] = json::Value(variant.status.message());
      variants.push_back(json::Value(std::move(entry)));
      continue;
    }
    entry["spec"] = api::JobSpecToJsonValue(variant.spec);
    entry["provenance"] = json::Value(ProvenanceSection(variant.result));
    entry["metrics"] = json::Value(MetricsSection(variant.result));
    entry["execution"] = json::Value(ExecutionSection(variant.result));
    variants.push_back(json::Value(std::move(entry)));
  }
  report["variants"] = json::Value(std::move(variants));

  json::Object sweep_stats;
  sweep_stats["grid_size"] = json::Value(result.variants.size());
  sweep_stats["cache_hits"] = json::Value(result.cache_hits);
  sweep_stats["cache_misses"] = json::Value(result.cache_misses);
  sweep_stats["prepare_seconds"] = json::Value(result.prepare_seconds);
  sweep_stats["total_seconds"] = json::Value(result.total_seconds);
  report["sweep"] = json::Value(std::move(sweep_stats));
  report["telemetry"] = json::Value(TelemetrySection(result.telemetry));
  report["environment"] = json::Value(EnvironmentSection());
  return json::Dump(json::Value(std::move(report))) + "\n";
}

Result<ReportDiff> DiffReports(const std::string& report_a,
                               const std::string& report_b) {
  Result<json::Value> parsed_a = json::Parse(report_a);
  if (!parsed_a.ok()) {
    return Status::InvalidArgument("report A: " + parsed_a.status().message());
  }
  Result<json::Value> parsed_b = json::Parse(report_b);
  if (!parsed_b.ok()) {
    return Status::InvalidArgument("report B: " + parsed_b.status().message());
  }
  if (!parsed_a->is_object() || !parsed_b->is_object()) {
    return Status::InvalidArgument("a report must be a JSON object");
  }
  const json::Object& a = parsed_a->AsObject();
  const json::Object& b = parsed_b->AsObject();

  auto schema_of = [](const json::Object& report) -> std::string {
    const json::Value* schema = report.Find("schema");
    return schema != nullptr && schema->is_string() ? schema->AsString() : "";
  };
  const std::string schema_a = schema_of(a);
  const std::string schema_b = schema_of(b);
  if (schema_a != kRunReportSchema && schema_a != kSweepReportSchema) {
    return Status::InvalidArgument("report A: unknown schema '" + schema_a +
                                   "'");
  }
  if (schema_a != schema_b) {
    return Status::InvalidArgument("cannot diff a '" + schema_a +
                                   "' against a '" + schema_b + "'");
  }

  ReportDiff diff;
  if (schema_a == kSweepReportSchema) {
    Status ok = DiffSweepReports(a, b, &diff);
    if (!ok.ok()) return ok;
  } else {
    DiffRunReports(a, b, "", &diff);
  }
  diff.kind = !diff.semantic.empty() ? DriftKind::kSemantic
              : !diff.perf.empty()   ? DriftKind::kPerfOnly
                                     : DriftKind::kNone;
  return diff;
}

}  // namespace obs
}  // namespace gsmb
