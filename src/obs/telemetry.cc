// Telemetry sink implementation. This file (with src/util/) is the
// sanctioned owner of std::chrono in the tree: every span, phase timing
// and latency histogram reads the clock here, relative to one process
// epoch, so the rest of the pipeline never touches a clock directly.

#include "gsmb/telemetry.h"

#include <algorithm>
#include <chrono>

#include "api/json.h"

namespace gsmb {
namespace obs {

namespace detail {
std::atomic<TelemetrySink*> g_sink{nullptr};
// Bumped on every Install so per-thread slot caches from a previous
// installation are never reused against a new one.
std::atomic<uint64_t> g_install_epoch{0};

double NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}
}  // namespace detail

namespace {

// Microseconds since the first telemetry clock read in this process.
// One shared epoch keeps span timestamps from different sinks, event-log
// records (and the trace as a whole) on a single timeline.
double NowUs() { return detail::NowMicros(); }

std::vector<double> MakeDefaultBounds() {
  // 1-2-5 series over seven decades: wide enough for microsecond query
  // latencies and for byte/row counts alike.
  std::vector<double> bounds;
  double decade = 1.0;
  for (int i = 0; i < 7; ++i) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
    decade *= 10.0;
  }
  bounds.push_back(decade);  // 1e7
  return bounds;
}

}  // namespace

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double> bounds = MakeDefaultBounds();
  return bounds;
}

// ---------------------------------------------------------------------------
// HistogramData

void HistogramData::Record(double value) {
  if (bounds.empty()) {
    bounds = DefaultHistogramBounds();
    counts.assign(bounds.size() + 1, 0);
  }
  size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++counts[bucket];
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
  sum += value;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // All registry histograms share DefaultHistogramBounds(), so merging
  // is element-wise.
  for (size_t i = 0; i < counts.size() && i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  double rank = p * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t seen = 0;
  double lower = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double upper = i < bounds.size() ? bounds[i] : max;
    if (counts[i] > 0) {
      if (static_cast<double>(seen + counts[i]) >= rank) {
        double lo = std::max(lower, min);
        double hi = std::min(upper, max);
        if (hi < lo) hi = lo;
        double frac = (rank - static_cast<double>(seen)) /
                      static_cast<double>(counts[i]);
        return lo + frac * (hi - lo);
      }
      seen += counts[i];
    }
    lower = upper;
  }
  return max;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, delta] : other.counters) counters[name] += delta;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    // Gauges merge by max: the interesting gauges (arena.bytes.peak)
    // are high-water marks.
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].MergeFrom(histogram);
  }
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = json::Value(value);
  }
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges[name] = json::Value(value);
  }
  json::Object histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    json::Object h;
    h["count"] = json::Value(histogram.count);
    h["sum"] = json::Value(histogram.sum);
    h["min"] = json::Value(histogram.min);
    h["max"] = json::Value(histogram.max);
    h["p50"] = json::Value(histogram.Percentile(0.50));
    h["p95"] = json::Value(histogram.Percentile(0.95));
    h["p99"] = json::Value(histogram.Percentile(0.99));
    json::Array buckets;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (histogram.counts[i] == 0) continue;  // sparse: only hit buckets
      json::Object bucket;
      if (i < histogram.bounds.size()) {
        bucket["le"] = json::Value(histogram.bounds[i]);
      } else {
        bucket["le"] = json::Value("inf");
      }
      bucket["count"] = json::Value(histogram.counts[i]);
      buckets.push_back(json::Value(std::move(bucket)));
    }
    h["buckets"] = json::Value(std::move(buckets));
    histograms[name] = json::Value(std::move(h));
  }
  json::Object root;
  root["counters"] = json::Value(std::move(counters));
  root["gauges"] = json::Value(std::move(gauges));
  root["histograms"] = json::Value(std::move(histograms));
  return json::Dump(json::Value(std::move(root))) + "\n";
}

// ---------------------------------------------------------------------------
// TelemetrySink

struct TelemetrySink::ThreadState {
  std::mutex mu;  // uncontended except against a concurrent export
  MetricsSnapshot metrics;
  std::vector<SpanEvent> spans;
  uint32_t tid = 0;
  uint32_t depth = 0;  // current span nesting (only its owner writes)
};

namespace {
// Per-thread slot cache: valid while (sink, install epoch) both match.
thread_local TelemetrySink* t_cached_sink = nullptr;
thread_local uint64_t t_cached_epoch = 0;
thread_local void* t_cached_state = nullptr;
}  // namespace

TelemetrySink::TelemetrySink() = default;
TelemetrySink::~TelemetrySink() = default;

TelemetrySink::ThreadState* TelemetrySink::StateForThisThread() {
  uint64_t epoch = detail::g_install_epoch.load(std::memory_order_relaxed);
  if (t_cached_sink == this && t_cached_epoch == epoch) {
    return static_cast<ThreadState*>(t_cached_state);
  }
  std::lock_guard<std::mutex> lock(mu_);
  thread_states_.push_back(std::make_unique<ThreadState>());
  ThreadState* state = thread_states_.back().get();
  state->tid = static_cast<uint32_t>(thread_states_.size() - 1);
  t_cached_sink = this;
  t_cached_epoch = epoch;
  t_cached_state = state;
  return state;
}

void TelemetrySink::CounterAdd(std::string_view name, uint64_t delta) {
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  state->metrics.counters[std::string(name)] += delta;
}

void TelemetrySink::GaugeSet(std::string_view name, double value) {
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  state->metrics.gauges[std::string(name)] = value;
}

void TelemetrySink::GaugeMax(std::string_view name, double value) {
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  auto [it, inserted] = state->metrics.gauges.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void TelemetrySink::HistogramRecord(std::string_view name, double value) {
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  state->metrics.histograms[std::string(name)].Record(value);
}

uint32_t TelemetrySink::EnterSpan() {
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  return state->depth++;
}

void TelemetrySink::ExitSpan(const char* name, double begin_us,
                             uint32_t depth, const char* latency_histogram) {
  double end_us = NowUs();
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->depth > 0) --state->depth;
  SpanEvent event;
  event.name = name;
  event.ts_us = begin_us;
  event.dur_us = end_us - begin_us;
  event.tid = state->tid;
  event.depth = depth;
  state->spans.push_back(std::move(event));
  if (latency_histogram != nullptr) {
    state->metrics.histograms[latency_histogram].Record(end_us - begin_us);
  }
}

MetricsSnapshot TelemetrySink::SnapshotMetrics() const {
  MetricsSnapshot merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& state : thread_states_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    merged.MergeFrom(state->metrics);
  }
  return merged;
}

std::vector<SpanEvent> TelemetrySink::Spans() const {
  std::vector<SpanEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& state : thread_states_) {
      std::lock_guard<std::mutex> state_lock(state->mu);
      all.insert(all.end(), state->spans.begin(), state->spans.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.name < b.name;
            });
  return all;
}

std::string TelemetrySink::TraceJson() const {
  json::Array events;
  for (const SpanEvent& span : Spans()) {
    json::Object event;
    event["name"] = json::Value(span.name);
    event["cat"] = json::Value("gsmb");
    event["ph"] = json::Value("X");
    event["ts"] = json::Value(span.ts_us);
    event["dur"] = json::Value(span.dur_us);
    event["pid"] = json::Value(1);
    event["tid"] = json::Value(span.tid);
    events.push_back(json::Value(std::move(event)));
  }
  json::Object root;
  root["displayTimeUnit"] = json::Value("ms");
  root["traceEvents"] = json::Value(std::move(events));
  return json::Dump(json::Value(std::move(root))) + "\n";
}

std::string TelemetrySink::MetricsJson() const {
  return obs::MetricsJson(SnapshotMetrics());
}

// ---------------------------------------------------------------------------
// Installation

void InstallSink(TelemetrySink* sink) {
  detail::g_install_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_sink.store(sink, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SpanScope

void SpanScope::Begin() {
  depth_ = sink_->EnterSpan();
  begin_us_ = NowUs();
}

void SpanScope::End() {
  sink_->ExitSpan(name_, begin_us_, depth_, histogram_);
}

// ---------------------------------------------------------------------------
// Phases

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kBlocking:
      return "blocking";
    case Phase::kPairs:
      return "pairs";
    case Phase::kFeatures:
      return "features";
    case Phase::kTrain:
      return "train";
    case Phase::kClassify:
      return "classify";
    case Phase::kPrune:
      return "prune";
  }
  return "unknown";
}

ScopedPhase::ScopedPhase(PhaseTimings* timings, Phase phase)
    : timings_(timings), phase_(phase), sink_(CurrentSink()),
      begin_us_(NowUs()) {
  if (sink_ != nullptr) depth_ = sink_->EnterSpan();
}

ScopedPhase::~ScopedPhase() {
  double end_us = NowUs();
  if (timings_ != nullptr) {
    timings_->Add(phase_, (end_us - begin_us_) * 1e-6);
  }
  if (sink_ != nullptr) {
    sink_->ExitSpan(PhaseName(phase_), begin_us_, depth_, nullptr);
  }
}

}  // namespace obs
}  // namespace gsmb
