// Event-log sink implementation. Shares the telemetry subsystem's
// per-thread slot protocol and its process clock epoch (via
// obs::detail::NowMicros), so log timestamps and span timestamps sit on
// one timeline and recording never takes a contended lock.

#include "gsmb/log.h"

#include <algorithm>

#include "api/json.h"
#include "gsmb/telemetry.h"

namespace gsmb {
namespace obs {

namespace detail {
std::atomic<LogSink*> g_log_sink{nullptr};
// Bumped on every install so per-thread slot caches from a previous
// installation are never reused against a new one.
std::atomic<uint64_t> g_log_install_epoch{0};
}  // namespace detail

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// LogSink

struct LogSink::ThreadState {
  std::mutex mu;  // uncontended except against a concurrent export
  std::vector<LogRecord> records;
  uint32_t tid = 0;
  uint64_t next_seq = 0;  // only its owner writes
};

namespace {
// Per-thread slot cache: valid while (sink, install epoch) both match.
thread_local LogSink* t_cached_log_sink = nullptr;
thread_local uint64_t t_cached_log_epoch = 0;
thread_local void* t_cached_log_state = nullptr;
}  // namespace

LogSink::LogSink(LogLevel min_level) : min_level_(min_level) {}
LogSink::~LogSink() = default;

LogSink::ThreadState* LogSink::StateForThisThread() {
  uint64_t epoch =
      detail::g_log_install_epoch.load(std::memory_order_relaxed);
  if (t_cached_log_sink == this && t_cached_log_epoch == epoch) {
    return static_cast<ThreadState*>(t_cached_log_state);
  }
  std::lock_guard<std::mutex> lock(mu_);
  thread_states_.push_back(std::make_unique<ThreadState>());
  ThreadState* state = thread_states_.back().get();
  state->tid = static_cast<uint32_t>(thread_states_.size() - 1);
  t_cached_log_sink = this;
  t_cached_log_epoch = epoch;
  t_cached_log_state = state;
  return state;
}

void LogSink::Log(LogLevel level, std::string_view event,
                  std::vector<LogField> fields) {
  if (!Enabled(level)) return;
  double now_us = detail::NowMicros();
  ThreadState* state = StateForThisThread();
  std::lock_guard<std::mutex> lock(state->mu);
  LogRecord record;
  record.level = level;
  record.event = std::string(event);
  record.fields = std::move(fields);
  record.ts_us = now_us;
  record.tid = state->tid;
  record.seq = state->next_seq++;
  state->records.push_back(std::move(record));
}

std::vector<LogRecord> LogSink::Records() const {
  std::vector<LogRecord> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& state : thread_states_) {
      std::lock_guard<std::mutex> state_lock(state->mu);
      all.insert(all.end(), state->records.begin(), state->records.end());
    }
  }
  // The deterministic flush order: logical thread id (registration
  // order), then the thread's own sequence. Never the timestamp.
  std::sort(all.begin(), all.end(),
            [](const LogRecord& a, const LogRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return all;
}

std::string LogSink::JsonLines() const {
  std::string out;
  for (const LogRecord& record : Records()) {
    json::Object line;
    line["ts_us"] = json::Value(record.ts_us);
    line["tid"] = json::Value(static_cast<uint64_t>(record.tid));
    line["seq"] = json::Value(record.seq);
    line["level"] = json::Value(LogLevelName(record.level));
    line["event"] = json::Value(record.event);
    json::Object fields;
    for (const LogField& field : record.fields) {
      switch (field.kind) {
        case LogField::Kind::kString:
          fields[field.key] = json::Value(field.str);
          break;
        case LogField::Kind::kU64:
          fields[field.key] = json::Value(field.u64);
          break;
        case LogField::Kind::kI64:
          fields[field.key] = json::Value(field.i64);
          break;
        case LogField::Kind::kF64:
          fields[field.key] = json::Value(field.f64);
          break;
        case LogField::Kind::kBool:
          fields[field.key] = json::Value(field.u64 != 0);
          break;
      }
    }
    line["fields"] = json::Value(std::move(fields));
    out += json::Dump(json::Value(std::move(line)), /*indent=*/0);
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Installation

void InstallLogSink(LogSink* sink) {
  detail::g_log_install_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_log_sink.store(sink, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace gsmb
