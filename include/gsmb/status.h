// The uniform error model of the public gsmb API.
//
// Before the facade, the codebase mixed three error conventions: library
// layers threw std::runtime_error/std::invalid_argument, the CLI called
// std::exit(2) mid-parse, and a few paths reported failure through result
// fields. Every public entry point in include/gsmb/ instead returns a
// gsmb::Status (or a Result<T> carrying one), so callers — CLIs, services,
// tests, bindings — handle every failure the same way and can always print
// a diagnostic that says *what* was wrong and *where* it came from.
//
// Internals may still throw; the facade boundary (gsmb::Engine and the
// JobSpec parser) converts exceptions into Status values and never lets one
// escape. Nothing in include/gsmb/ ever terminates the process.

#ifndef GSMB_API_STATUS_H_
#define GSMB_API_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gsmb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed spec / flag / parameter value
  kNotFound,           ///< missing file, unknown backend or enum name
  kFailedPrecondition, ///< valid spec that this backend cannot execute
  kUnimplemented,      ///< feature admitted by the spec but not built yet
  kInternal,           ///< an invariant broke; includes converted exceptions
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default: OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  static Status NotFound(std::string message) {
    return {StatusCode::kNotFound, std::move(message)};
  }
  static Status FailedPrecondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  static Status Unimplemented(std::string message) {
    return {StatusCode::kUnimplemented, std::move(message)};
  }
  static Status Internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "invalid-argument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or the Status explaining its absence — the return type of every
/// fallible facade call that produces something.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {
    // A Result constructed from OK would have neither value nor error;
    // treat it as the internal bug it is instead of crashing on value().
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from an OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// OK when a value is present.
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace gsmb

#endif  // GSMB_API_STATUS_H_
