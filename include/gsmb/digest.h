// Content digests for run provenance (gsmb/report.h).
//
// Every hash here is computed with in-repo, platform-stable primitives
// (FNV-1a 64 + a splitmix64-style finalizer) — never std::hash — so a
// digest written on one machine compares bit-identical on another. That
// stability is load-bearing: CI diffs freshly generated run reports
// against a committed golden report, and ROADMAP item 1's remote workers
// ship digests the coordinator verifies.
//
// PairSetDigest is ORDER-INDEPENDENT: it folds per-pair hashes with
// commutative XOR and wrapping SUM (plus a count), so the digest of a
// retained set is identical no matter which thread, shard or backend
// emitted which pair — the digest equivalent of the retained-pair
// determinism contract. XOR alone would miss duplicated pairs and
// even-multiplicity swaps; SUM alone is weaker against crafted
// collisions; together with the count they make an accidental collision
// across backends implausible.

#ifndef GSMB_DIGEST_H_
#define GSMB_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gsmb {

struct JobInputs;        // gsmb/prepared.h
struct StreamingDataset; // stream/streaming_dataset.h

namespace obs {

/// splitmix64-style finalizer: a stable, well-mixing 64-bit permutation.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a 64 over bytes, folded into `seed`. Stable across platforms.
uint64_t HashBytes(std::string_view bytes, uint64_t seed);

/// Hash of one ordered (left, right) external-id pair. Left and right
/// are separated by an out-of-alphabet byte, so ("ab","c") and
/// ("a","bc") hash differently, and the pair is order-sensitive within
/// itself while PairSetDigest stays order-free across pairs.
uint64_t HashPair(std::string_view left, std::string_view right);

/// 16 lowercase hex characters, zero-padded — the serialized form of
/// every digest in reports and bench JSON.
std::string DigestHex(uint64_t value);

/// Order-independent digest of a set of pairs. Add pairs from any
/// thread interleaving (each accumulator is single-writer; merge shard
/// or thread locals with MergeFrom) — the final Value() depends only on
/// the multiset of pairs.
struct PairSetDigest {
  uint64_t xor_hash = 0;
  uint64_t sum_hash = 0;
  uint64_t count = 0;

  void Add(uint64_t pair_hash) {
    xor_hash ^= pair_hash;
    sum_hash += pair_hash;  // wraps mod 2^64; still commutative
    ++count;
  }
  void AddPair(std::string_view left, std::string_view right) {
    Add(HashPair(left, right));
  }
  void MergeFrom(const PairSetDigest& other) {
    xor_hash ^= other.xor_hash;
    sum_hash += other.sum_hash;
    count += other.count;
  }

  /// The folded 64-bit digest (mixes xor, sum and count).
  uint64_t Value() const {
    return Mix64(xor_hash ^ Mix64(sum_hash ^ Mix64(count)));
  }
  std::string Hex() const { return DigestHex(Value()); }

  bool operator==(const PairSetDigest& other) const = default;
};

/// Content fingerprint of a loaded dataset: every profile (external id +
/// attributes, in internal-id order), the dirty flag, and the ground
/// truth. Identical inputs => identical fingerprint, regardless of how
/// or where they were loaded.
uint64_t DatasetFingerprint(const JobInputs& inputs);

/// Digest of a preparation's blocked representation: the post-purge,
/// post-filter block collection (keys + member ids), its stats and the
/// candidate count. Two preparations with equal digests imply the same
/// candidate space.
uint64_t PreparedStreamDigest(const StreamingDataset& stream);

}  // namespace obs
}  // namespace gsmb

#endif  // GSMB_DIGEST_H_
