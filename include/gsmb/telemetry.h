// Pipeline-wide telemetry: phase-scoped spans, a metrics registry of
// counters / gauges / fixed-bucket histograms, and Chrome-trace export.
//
// Design contract (the determinism guarantee extends to observability):
//
//   * Compiled in, but cheap when off. No sink installed means every
//     instrumentation site is one relaxed atomic load and a branch — no
//     clock read, no allocation, no lock. Hot loops stay hot.
//   * Per-thread aggregation. Each worker thread records into its own
//     slot inside the sink; slots are merged only at export time, so
//     instrumentation never adds cross-thread ordering and cannot
//     perturb retained-pair determinism.
//   * Deterministic output. Counter values are unsigned integers whose
//     merge is commutative, so a metrics export is bit-identical across
//     thread counts; exported JSON is name-sorted.
//
// The subsystem is also the sanctioned clock owner: std::chrono stays
// inside src/obs/ + src/util/ (lint_determinism.py enforces this), and
// this header deliberately includes no clock — SpanScope reads the time
// out of line, only after the sink check passed.

#ifndef GSMB_TELEMETRY_H_
#define GSMB_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gsmb {
namespace obs {

// ---------------------------------------------------------------------------
// Metric value types

/// Fixed-bucket histogram. Buckets are cumulative-style upper bounds
/// (`value <= bounds[i]` lands in bucket i; the last slot of `counts`
/// is the overflow bucket). All registry histograms share the default
/// 1-2-5 bound series so any two HistogramData merge without rebinning.
struct HistogramData {
  std::vector<double> bounds;    // ascending upper bounds
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Record(double value);
  void MergeFrom(const HistogramData& other);
  /// Linear-interpolated percentile estimate, p in [0, 1]. Clamped to
  /// the observed [min, max] range; 0 when empty.
  double Percentile(double p) const;
};

/// The default 1-2-5 bound series (1 .. 1e7), shared by every registry
/// histogram. Values are unit-agnostic; latency histograms use it as
/// microseconds.
const std::vector<double>& DefaultHistogramBounds();

/// A merged, plain-data view of the registry: what a sink exports and
/// what JobResult carries as its per-run metric snapshot. std::map keys
/// keep every export name-sorted, hence deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  void MergeFrom(const MetricsSnapshot& other);
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Serializes a snapshot as name-sorted JSON (counters / gauges /
/// histograms with count/sum/min/max/p50/p95/p99 and bucket rows).
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// One completed span, Chrome-trace "complete event" shaped. tid is a
/// logical thread id (registration order inside the sink), depth the
/// nesting level at emission.
struct SpanEvent {
  std::string name;
  double ts_us = 0.0;   // start, microseconds since process telemetry epoch
  double dur_us = 0.0;  // duration, microseconds
  uint32_t tid = 0;
  uint32_t depth = 0;
};

// ---------------------------------------------------------------------------
// The sink

/// Collects spans and metrics from any number of threads. Recording
/// goes to a per-thread slot guarded by that slot's own (uncontended)
/// mutex; exports lock the slot list and merge. A sink must outlive
/// every thread that records into it while installed.
class TelemetrySink {
 public:
  TelemetrySink();
  ~TelemetrySink();
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // Recording (thread-safe).
  void CounterAdd(std::string_view name, uint64_t delta);
  void GaugeSet(std::string_view name, double value);
  void GaugeMax(std::string_view name, double value);
  void HistogramRecord(std::string_view name, double value);

  // Span protocol used by SpanScope / ScopedPhase: EnterSpan bumps the
  // calling thread's nesting depth and returns the span's depth;
  // ExitSpan appends the completed event (and, when latency_histogram
  // is non-null, records the duration in microseconds there).
  uint32_t EnterSpan();
  void ExitSpan(const char* name, double begin_us, uint32_t depth,
                const char* latency_histogram);

  // Export (thread-safe; merges all per-thread slots).
  MetricsSnapshot SnapshotMetrics() const;
  std::vector<SpanEvent> Spans() const;
  /// Chrome chrome://tracing / Perfetto "traceEvents" JSON.
  std::string TraceJson() const;
  /// MetricsJson(SnapshotMetrics()).
  std::string MetricsJson() const;

 private:
  struct ThreadState;
  ThreadState* StateForThisThread();

  mutable std::mutex mu_;  // guards thread_states_ (slot list only)
  std::vector<std::unique_ptr<ThreadState>> thread_states_;
};

// ---------------------------------------------------------------------------
// Global installation — the one relaxed atomic the fast path reads.

namespace detail {
extern std::atomic<TelemetrySink*> g_sink;
/// Microseconds since the process telemetry epoch (the first clock read).
/// Shared by spans and the event log (gsmb/log.h) so all observability
/// timestamps sit on one timeline. Defined in src/obs/telemetry.cc — the
/// sanctioned clock owner.
double NowMicros();
}  // namespace detail

/// The installed sink, or nullptr. Relaxed load: instrumentation sites
/// branch on this and do nothing else when telemetry is off.
inline TelemetrySink* CurrentSink() {
  return detail::g_sink.load(std::memory_order_relaxed);
}

/// Installs `sink` process-wide (nullptr uninstalls). The caller owns
/// the sink and must uninstall before destroying it; threads recording
/// concurrently with Install may attribute to either sink.
void InstallSink(TelemetrySink* sink);

// Free-function recording shims: no-ops without an installed sink.
inline void CounterAdd(std::string_view name, uint64_t delta = 1) {
  if (TelemetrySink* sink = CurrentSink()) sink->CounterAdd(name, delta);
}
inline void GaugeSet(std::string_view name, double value) {
  if (TelemetrySink* sink = CurrentSink()) sink->GaugeSet(name, value);
}
inline void GaugeMax(std::string_view name, double value) {
  if (TelemetrySink* sink = CurrentSink()) sink->GaugeMax(name, value);
}
inline void HistogramRecord(std::string_view name, double value) {
  if (TelemetrySink* sink = CurrentSink()) sink->HistogramRecord(name, value);
}

// ---------------------------------------------------------------------------
// Spans

/// RAII span. With no sink installed the constructor is a relaxed load
/// plus branch; the clock is only read (out of line) when a sink is
/// present. The optional second argument names a histogram that
/// receives the span duration in microseconds, so latency metrics and
/// trace spans come from one clock read.
class SpanScope {
 public:
  explicit SpanScope(const char* name,
                     const char* latency_histogram = nullptr)
      : sink_(CurrentSink()),
        name_(name),
        histogram_(latency_histogram) {
    if (sink_ != nullptr) Begin();
  }
  ~SpanScope() {
    if (sink_ != nullptr) End();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void Begin();  // reads the clock; defined in src/obs/telemetry.cc
  void End();

  TelemetrySink* sink_;
  const char* name_;
  const char* histogram_;
  double begin_us_ = 0.0;
  uint32_t depth_ = 0;
};

#define GSMB_OBS_CONCAT_INNER(a, b) a##b
#define GSMB_OBS_CONCAT(a, b) GSMB_OBS_CONCAT_INNER(a, b)
/// GSMB_SPAN("name") or GSMB_SPAN("name", "latency.histogram_us"):
/// scopes a span over the rest of the enclosing block.
#define GSMB_SPAN(...) \
  ::gsmb::obs::SpanScope GSMB_OBS_CONCAT(gsmb_span_, __LINE__)(__VA_ARGS__)

// ---------------------------------------------------------------------------
// Canonical pipeline phases (the satellite of every JobResult)

/// The canonical phase set every execution backend reports. Phase
/// timings flow through PhaseTimings into the JobResult `*_seconds`
/// fields, so all backends share one clock source and one phase
/// vocabulary.
enum class Phase : int {
  kBlocking = 0,  // preparation: blocking + purging + filtering
  kPairs,         // candidate-pair generation / batch materialisation
  kFeatures,
  kTrain,
  kClassify,
  kPrune,
};
inline constexpr int kPhaseCount = 6;

const char* PhaseName(Phase phase);

/// Per-job phase-time accumulator. Plain data: backends own one per
/// run, so concurrent sweep variants never mix their timings.
struct PhaseTimings {
  double seconds[kPhaseCount] = {};

  void Add(Phase phase, double secs) {
    seconds[static_cast<int>(phase)] += secs;
  }
  double Get(Phase phase) const {
    return seconds[static_cast<int>(phase)];
  }
  void MergeFrom(const PhaseTimings& other) {
    for (int i = 0; i < kPhaseCount; ++i) seconds[i] += other.seconds[i];
  }
  double Total() const {
    double total = 0.0;
    for (double s : seconds) total += s;
    return total;
  }
};

/// RAII phase timer: always times (JobResult reports phase seconds with
/// or without telemetry), and additionally emits a span named after the
/// phase when a sink is installed. This is the single clock source for
/// the pipeline's RT breakdown.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimings* timings, Phase phase);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimings* timings_;
  Phase phase_;
  TelemetrySink* sink_;
  double begin_us_;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace gsmb

#endif  // GSMB_TELEMETRY_H_
