// Prepared snapshots: a versioned binary file format for PreparedInputs.
//
// Engine::Prepare is a pure function of the spec's dataset+blocking
// sections, but its result was process-local — every worker process, bench
// harness and CI job paid its own load + block + count. A prepared snapshot
// serializes the preparation's *sources of truth* (profiles, ground truth,
// and the post-purge/filter block collection) and rebuilds the rest — the
// EntityIndex, block stats, and the streaming counting preparation — on
// load, through the exact deterministic code path a cold Prepare takes
// (PrepareStreamingFromBlocks). A loaded handle is therefore bit-identical
// to a cold preparation, and the file does not duplicate state that could
// drift from the build path.
//
// Verified, not trusted: the file embeds the preparation's
// obs::DatasetFingerprint and obs::PreparedStreamDigest, and Load recomputes
// both over the rebuilt state. A snapshot whose bytes were corrupted in a
// way that still parses fails the digest check instead of silently
// executing against different blocks. Truncated/garbled files are rejected
// by bounds-checked reads before any container is sized from a length
// field.
//
// Loaded handles enter an Engine through Engine::AdoptPrepared, which seeds
// the prepare cache under the handle's own cache key — the distributed tier
// (gsmb/remote.h) uses this so N worker processes share ONE preparation.

#ifndef GSMB_SNAPSHOT_H_
#define GSMB_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "gsmb/prepared.h"
#include "gsmb/status.h"

namespace gsmb {

/// Magic + format version of the prepared-snapshot file ("GSMBPS" + two
/// version digits). Bumped on any layout change; mismatched versions are
/// rejected with a diagnostic naming both.
inline constexpr std::string_view kPreparedSnapshotMagic = "GSMBPS01";

/// The self-describing header of a snapshot file — readable without
/// rebuilding the preparation, so a coordinator can verify workers against
/// a snapshot it did not create.
struct PreparedSnapshotInfo {
  /// PrepareCacheKey(spec) of the preparation: the canonical JSON of the
  /// spec's dataset+blocking sections.
  std::string cache_key;
  uint64_t dataset_fingerprint = 0;
  uint64_t prepared_digest = 0;
  /// Wall-clock cost of the original preparation, seconds.
  double prepare_seconds = 0.0;
  /// Total size of the snapshot file, bytes.
  uint64_t file_bytes = 0;
};

/// Writes `prepared` to `path` (overwriting). The snapshot holds the
/// profiles, ground truth and preprocessed blocks plus the header digests;
/// derived state is rebuilt on load.
Status SavePreparedSnapshot(const PreparedInputs& prepared,
                            const std::string& path);

/// Reads only the header. Rejects bad magic / unsupported versions /
/// truncated headers with a diagnostic.
Result<PreparedSnapshotInfo> ReadPreparedSnapshotInfo(const std::string& path);

/// Loads a snapshot and rebuilds the full preparation with `num_threads`
/// workers (0 = all hardware threads; the rebuilt state is bit-identical
/// for any value). Recomputes DatasetFingerprint and PreparedStreamDigest
/// over the rebuilt state and fails — naming stored and recomputed values —
/// when either disagrees with the header.
Result<PreparedHandle> LoadPreparedSnapshot(const std::string& path,
                                            size_t num_threads = 0);

}  // namespace gsmb

#endif  // GSMB_SNAPSHOT_H_
