// gsmb::JobSpec — the declarative description of one meta-blocking job.
//
// The paper frames (Generalized) Supervised Meta-blocking as ONE pipeline:
// block the input, weight every candidate pair with a feature vector,
// classify, prune. A JobSpec pins that pipeline down as data: what to read,
// how to block it, which features/classifier/pruning to use, how to train,
// and how to execute (in memory, out of core, or through the serving
// layer). The same spec drives every backend of gsmb::Engine, serializes
// to/from versioned JSON (`gsmb_cli explain` emits it; `gsmb_cli run
// --config job.json` replays it), and validates with diagnostics instead of
// exceptions or exits.
//
// Spec evolution contract: `version` is required in every serialized spec.
// Unknown versions and unknown keys are rejected with a diagnostic — a spec
// never silently means something else than it says. Older versions within
// [kJobSpecMinVersion, kJobSpecVersion] are read under THEIR schema (a
// version-1 file may not use version-2 keys) and upgraded in memory;
// ToJson() always writes the current version, and `gsmb_cli migrate`
// rewrites spec files in place the same way.
//
// Version history:
//   1  PR 4 — the original facade schema.
//   2  adds pruning.validity_threshold (the paper's 0.5 floor, previously
//      fixed; <= 0 disables it for unsupervised-style weighting).
//   3  opens blocking.scheme to the scheme registry (src/schemes/):
//      sorted-neighborhood, dynamic-sorted-neighborhood,
//      attribute-clustering and minhash-lsh join token/qgram/suffix, with
//      per-scheme keys (blocking.window, min_window, key_similarity,
//      attribute_similarity, lsh_bands, lsh_rows, minhash_seed). A
//      version-1/2 file may only name the legacy schemes and none of the
//      new keys.

#ifndef GSMB_API_JOB_SPEC_H_
#define GSMB_API_JOB_SPEC_H_

#include <cstdint>
#include <string>

#include "core/feature_set.h"
#include "core/pruning.h"
#include "gsmb/execution.h"
#include "gsmb/status.h"
#include "ml/classifier.h"

namespace gsmb {

/// Version written by ToJson(). FromJson() reads every version in
/// [kJobSpecMinVersion, kJobSpecVersion] and upgrades in memory.
inline constexpr uint64_t kJobSpecVersion = 3;
inline constexpr uint64_t kJobSpecMinVersion = 1;

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

enum class DatasetSource {
  kCsv,                 ///< id,attribute,value CSV files + ground-truth CSV
  kGeneratedCleanClean, ///< synthetic Table-1 stand-in by spec name
  kGeneratedDirty,      ///< synthetic D10K..D300K stand-in by spec name
};

struct DatasetSpec {
  DatasetSource source = DatasetSource::kCsv;
  /// CSV source. Omitting `e2` selects Dirty ER (deduplication of `e1`).
  std::string e1;
  std::string e2;
  std::string ground_truth;
  /// Generated source: spec name ("AbtBuy", "D10K", ...) and entity-count
  /// scale multiplier.
  std::string name;
  double scale = 1.0;

  /// True when the spec describes a single-collection (Dirty ER) job.
  bool dirty() const {
    return source == DatasetSource::kGeneratedDirty ||
           (source == DatasetSource::kCsv && e2.empty());
  }
};

/// Names of the built-in blocking schemes (see src/schemes/). Spec fields
/// and CLI flags refer to schemes by registry name; schemes::FindBlocker()
/// resolves a name to its implementation.
inline constexpr char kSchemeToken[] = "token";
inline constexpr char kSchemeQGram[] = "qgram";
inline constexpr char kSchemeSuffix[] = "suffix";
inline constexpr char kSchemeSortedNeighborhood[] = "sorted-neighborhood";
inline constexpr char kSchemeDynamicSortedNeighborhood[] =
    "dynamic-sorted-neighborhood";
inline constexpr char kSchemeAttributeClustering[] = "attribute-clustering";
inline constexpr char kSchemeMinHashLsh[] = "minhash-lsh";

struct BlockingSpec {
  /// Registry name of the blocking scheme (schemes::FindBlocker()).
  /// Version 1/2 specs may only name token | qgram | suffix.
  std::string scheme = kSchemeToken;
  /// Token / attribute-clustering / minhash schemes: minimum token length
  /// used as (part of) a key.
  size_t min_token_length = 1;
  /// Q-gram scheme: gram length.
  size_t qgram = 3;
  /// Suffix scheme: minimum suffix length and per-source block cap.
  size_t suffix_min_length = 4;
  size_t suffix_max_block_size = 64;
  /// Sorted-neighborhood schemes: window size (the fixed window, and the
  /// maximum window of the dynamic variant). Version 3.
  size_t window = 4;
  /// Dynamic sorted neighborhood: minimum window size. Version 3.
  size_t min_window = 2;
  /// Dynamic sorted neighborhood: the window keeps extending while
  /// adjacent sort keys are at least this similar (normalized common
  /// prefix, in (0, 1]). Version 3.
  double key_similarity = 0.5;
  /// Attribute clustering: attributes link when the Jaccard similarity of
  /// their value token sets reaches this threshold (in (0, 1]). Version 3.
  double attribute_similarity = 0.3;
  /// MinHash-LSH: band count and rows (minhashes) per band; the signature
  /// length is bands * rows. Version 3.
  size_t lsh_bands = 8;
  size_t lsh_rows = 4;
  /// MinHash-LSH: seed of the hash family, routed through util/random.
  /// Version 3.
  uint64_t minhash_seed = 7;
  /// Block Purging: drop blocks larger than this fraction of all profiles.
  /// Values >= 1 disable purging (only zero-comparison blocks drop).
  double purge_size_fraction = 0.5;
  /// Block Filtering: fraction of its smallest blocks each entity keeps.
  /// 1 disables filtering. The serving backend requires 1 (filtering is a
  /// cross-shard operation a shard-pure session cannot apply).
  double filter_ratio = 0.8;
};

struct TrainingSpec {
  /// Balanced training set: labelled pairs per class.
  size_t labels_per_class = 25;
  /// Seed of the training-pair sample (one paper repetition = one seed).
  uint64_t seed = 0;
};

struct PruningSpec {
  PruningKind kind = PruningKind::kBlast;
  double blast_ratio = 0.35;
  /// Pairs with classifier probability below this are never retained (the
  /// paper's 0.5). <= 0 disables the floor (unsupervised-style weighting).
  /// Spec version 2; a version-1 file cannot name it.
  double validity_threshold = 0.5;
};

enum class ExecutionMode {
  kBatch,     ///< in-memory pipeline (core/)
  kStreaming, ///< bounded-memory out-of-core executor (stream/)
  kServing,   ///< cold-built serving session (serve/)
  kAuto,      ///< batch, unless the arena-bytes model exceeds the budget
};

struct ExecutionSpec {
  ExecutionMode mode = ExecutionMode::kBatch;
  /// Worker threads for every stage; 0 = all hardware threads. Results are
  /// bit-identical for any value.
  ExecutionOptions options;
  /// Streaming: contiguous chunk-aligned candidate-space slices.
  /// Serving: hash-sharded token key shards.
  size_t shards = 16;
  /// Streaming: raise the shard count until one shard's arena fits.
  /// Auto mode: switch to streaming when the in-memory candidate arrays
  /// (pairs + features + probabilities + labels) would not fit.
  /// 0 = no budget.
  size_t memory_budget_mb = 0;
  /// Serving: absolute Block Purging cap per shard. 0 derives it from
  /// blocking.purge_size_fraction and the profile count, which makes a
  /// single-shard cold build purge exactly like the batch pipeline.
  size_t serving_max_block_size = 0;
};

struct OutputSpec {
  /// When non-empty, the retained pairs are written here as a
  /// left_id,right_id CSV (byte-identical across backends that retain the
  /// same pairs).
  std::string retained_csv;
  /// Keep the retained external-id pairs in JobResult (O(retained) memory).
  bool keep_retained = false;
};

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

struct JobSpec {
  uint64_t version = kJobSpecVersion;
  DatasetSpec dataset;
  BlockingSpec blocking;
  FeatureSet features = FeatureSet::BlastOptimal();
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  PruningSpec pruning;
  TrainingSpec training;
  ExecutionSpec execution;
  OutputSpec output;

  /// Canonical JSON: every field explicit, members in schema order, stable
  /// across runs. Re-parses to an equal spec.
  std::string ToJson(int indent = 2) const;

  /// Parses a JSON spec over `base` (default: a default-constructed spec).
  /// Partial specs are allowed — absent fields keep base's values, which
  /// is what lets a subcommand seed mode-specific defaults and a spec file
  /// override only what it names. Malformed JSON, unknown versions,
  /// unknown keys and type mismatches are rejected with a "where and why"
  /// diagnostic. Value-range and completeness problems are reported by
  /// Validate(), so a spec file can legitimately omit e.g. dataset paths
  /// that arrive as CLI flag overrides.
  static Result<JobSpec> FromJson(const std::string& text,
                                  const JobSpec& base);
  static Result<JobSpec> FromJson(const std::string& text);

  /// FromJson over a file's contents.
  static Result<JobSpec> FromFile(const std::string& path,
                                  const JobSpec& base);
  static Result<JobSpec> FromFile(const std::string& path);

  /// Checks value ranges and dataset completeness. OK means every backend
  /// can at least *interpret* the spec; backend-specific restrictions
  /// (e.g. serving needs Dirty ER) are reported by Executor::Supports().
  Status Validate() const;

  bool operator==(const JobSpec& other) const;
};

// ---------------------------------------------------------------------------
// Enum <-> name helpers (shared by the JSON layer and the CLI)
// ---------------------------------------------------------------------------

const char* DatasetSourceName(DatasetSource source);
const char* ExecutionModeName(ExecutionMode mode);
/// Short CLI-style classifier name: logreg | svc | nb.
const char* ClassifierShortName(ClassifierKind kind);
/// Lower-case pruning-kind name: bcl | wep | ... | rcnp.
std::string PruningShortName(PruningKind kind);
/// Named feature set ("blast", "rcnp", "2014", "all") when the mask matches
/// one, otherwise a comma-separated member list ("cf-ibf,raccb,js").
std::string FeatureSetSpecName(const FeatureSet& features);

Result<DatasetSource> ParseDatasetSource(const std::string& name);
/// Resolves `name` against the scheme registry; NotFound (listing the
/// registered names) when unknown.
Result<std::string> ParseBlockingScheme(const std::string& name);
Result<ExecutionMode> ParseExecutionMode(const std::string& name);
Result<ClassifierKind> ParseClassifierName(const std::string& name);
Result<PruningKind> ParsePruningName(const std::string& name);
/// Accepts the named sets and comma-separated member lists, in any case.
Result<FeatureSet> ParseFeatureSetName(const std::string& name);

}  // namespace gsmb

#endif  // GSMB_API_JOB_SPEC_H_
