// gsmb::PreparedInputs — the immutable, shareable result of Engine::Prepare.
//
// Every experiment of the paper is a sweep: one dataset+blocking evaluated
// under many pruning kinds, feature sets, classifiers, training sizes and
// seeds (Figs. 5-18, Tables 3-7). The expensive part — loading profiles,
// building blocks, purging/filtering, indexing, counting candidates — is a
// pure function of the spec's `dataset` and `blocking` sections alone, so
// it is prepared ONCE and shared:
//
//   gsmb::Engine engine;
//   gsmb::Result<gsmb::PreparedHandle> prepared = engine.Prepare(spec);
//   for (auto& variant : variants)            // pruning/features/seed/...
//     engine.Execute(variant, *prepared);     // no re-blocking
//
// Engine::Prepare serves handles from an engine-level LRU cache keyed on
// PrepareCacheKey(spec) — the canonical JSON of the dataset+blocking
// sections — so plain Engine::Run calls, sweeps and long-lived services all
// share one preparation per distinct (dataset, blocking) pair.
//
// A handle carries the counting (streaming) preparation, which every
// backend can execute from; the batch backend's O(|C|) candidate arrays are
// materialised lazily, at most once per handle, on first batch execution.
// Handles are immutable after construction (the lazy batch arrays are
// logically const: built once, then only read) and safe to share across
// threads.

#ifndef GSMB_API_PREPARED_H_
#define GSMB_API_PREPARED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "gsmb/job_spec.h"
#include "stream/streaming_dataset.h"

namespace gsmb {

/// The loaded dataset of a job: one or two collections plus ground truth.
struct JobInputs {
  EntityCollection e1;
  EntityCollection e2;  // empty for Dirty ER
  bool dirty = false;
  GroundTruth ground_truth{false};

  const std::string& ExternalLeftId(EntityId id) const {
    return e1[id].external_id();
  }
  const std::string& ExternalRightId(EntityId id) const {
    return dirty ? e1[id].external_id() : e2[id].external_id();
  }
};

/// Canonical cache identity of a preparation: the spec's dataset+blocking
/// sections as single-line canonical JSON. Two specs with equal keys imply
/// bit-identical preparations; unrelated sections (features, pruning,
/// training, execution, output) never enter the key.
std::string PrepareCacheKey(const JobSpec& spec);

class PreparedInputs {
 public:
  /// The O(|C|) arrays only the batch pipeline needs: the materialised
  /// candidate set and its ground-truth labels.
  struct BatchArrays {
    std::vector<CandidatePair> pairs;
    std::vector<uint8_t> is_positive;  // per candidate pair
    /// One-off cost of materialising these arrays, seconds.
    double materialize_seconds = 0.0;
  };

  /// Profiles + ground truth, exactly as a backend would have loaded them.
  JobInputs inputs;
  /// The counting preparation: blocks after purging/filtering, the global
  /// EntityIndex, block stats, blocking quality, and the per-pivot prefix
  /// offsets that let any backend enumerate the candidate space.
  StreamingDataset stream;
  /// PrepareCacheKey(spec) of the spec this was prepared from.
  std::string cache_key;
  /// Wall-clock cost of the preparation (load + block + count), seconds.
  /// Feeds JobResult::blocking_seconds through api::ApplyPhaseTimings —
  /// the single-source writer of every backend's timing fields — as the
  /// one-off cost of the handle, not of the call. (The batch arrays'
  /// materialize_seconds is reported as generate_seconds, the same phase
  /// that cost lands in when streaming regenerates pairs per shard.)
  double prepare_seconds = 0.0;
  /// Content fingerprint of the loaded dataset (obs::DatasetFingerprint):
  /// profiles + ground truth, independent of how they were loaded.
  /// Flows into JobResult and run reports (gsmb/report.h).
  uint64_t dataset_fingerprint = 0;
  /// Digest of the blocked representation (obs::PreparedStreamDigest):
  /// post-purge/filter blocks + candidate count. Equal digests imply the
  /// same candidate space — the artifact ROADMAP item 1's prepared
  /// snapshots and golden-preparation diffs verify against.
  uint64_t prepared_digest = 0;

  uint64_t num_candidates() const { return stream.num_candidates(); }

  /// Lazily materialises (at most once per handle, thread-safe) and returns
  /// the batch arrays. Streaming-only users never pay this.
  const BatchArrays& Batch(size_t num_threads) const;

  /// True once Batch() has materialised the O(|C|) arrays.
  bool batch_materialized() const {
    return batch_ready_.load(std::memory_order_acquire);
  }

  /// Approximate resident bytes of this handle (profiles, blocks, index,
  /// counting arrays, plus the batch arrays when materialised). Drives the
  /// prepare cache's byte-budget eviction; an estimate, not an audit.
  size_t ApproxBytes() const;

 private:
  mutable std::once_flag batch_once_;
  mutable BatchArrays batch_;
  mutable std::atomic<bool> batch_ready_{false};
};

/// How Prepare hands out preparations: shared and immutable. A handle keeps
/// its preparation alive even after the cache evicts it.
using PreparedHandle = std::shared_ptr<const PreparedInputs>;

/// Counters of the engine-level prepare cache (see Engine::Prepare).
struct PrepareCacheStats {
  size_t hits = 0;       ///< Prepare() calls served from the cache
  size_t misses = 0;     ///< preparations actually built
  size_t evictions = 0;  ///< entries dropped by the LRU policy
  size_t entries = 0;    ///< currently cached preparations
  size_t bytes = 0;      ///< ApproxBytes() over current entries
};

}  // namespace gsmb

#endif  // GSMB_API_PREPARED_H_
