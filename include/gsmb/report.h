// gsmb::obs::RunReport — self-describing run provenance documents.
//
// A run report is the durable, comparable record of one Engine::Run (or
// one RunSweep): the canonical spec that ran, content digests of what it
// consumed and produced (gsmb/digest.h), effectiveness metrics, the
// per-run MetricsSnapshot, and environment/build info. Two reports agree
// on their SEMANTIC fields exactly when the runs computed the same
// thing:
//
//   semantic   spec minus its execution/output sections, the dataset
//              fingerprint, the prepared digest (when both runs built
//              the global blocked representation), the retained-set
//              digest and count, and PC/PQ/F1.
//   perf-only  everything else: backend name, thread/shard counts,
//              phase timings, telemetry, environment.
//
// That split is the point: the same spec run on a different backend, a
// different thread count or a different machine must diff clean on the
// semantic fields (`gsmb_cli report diff` exits 0), while a changed
// retained set — even one pair — is semantic drift (exit 1). CI keeps a
// committed golden report and fails on semantic drift against it.

#ifndef GSMB_REPORT_H_
#define GSMB_REPORT_H_

#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/status.h"
#include "gsmb/sweep.h"

namespace gsmb {
namespace obs {

/// Schema tag + version written into every report document.
inline constexpr const char* kRunReportSchema = "gsmb.run_report";
inline constexpr const char* kSweepReportSchema = "gsmb.sweep_report";
inline constexpr uint64_t kReportSchemaVersion = 1;

/// The report of one Engine::Run/RunOn/Execute result, as indented JSON
/// (trailing newline included). `spec` must be the spec that produced
/// `result`.
std::string RunReportJson(const JobSpec& spec, const JobResult& result);

/// One document for a whole sweep: the sweep spec plus a per-variant
/// fold of the run-report fields (label, spec, provenance, metrics,
/// execution), in expansion order, with environment/telemetry reported
/// once at the top level.
std::string SweepReportJson(const SweepSpec& sweep,
                            const SweepResult& result);

/// How two reports differ.
enum class DriftKind {
  kNone,      ///< semantically and observationally identical
  kPerfOnly,  ///< only timings/backend/environment fields differ
  kSemantic,  ///< digests, metrics or the effective spec differ
};

const char* DriftKindName(DriftKind kind);

struct ReportDiff {
  DriftKind kind = DriftKind::kNone;
  /// Human-readable "path: A-value != B-value" lines, one per drifted
  /// semantic field.
  std::vector<std::string> semantic;
  /// Same, for perf/informational fields (advisory).
  std::vector<std::string> perf;
};

/// Parses two report documents (both run reports or both sweep reports)
/// and classifies their drift. Sweep reports are matched variant-by-
/// variant on the label; a variant present on one side only is semantic
/// drift. Fails with a diagnostic on malformed documents or mismatched
/// schemas.
Result<ReportDiff> DiffReports(const std::string& report_a,
                               const std::string& report_b);

}  // namespace obs
}  // namespace gsmb

#endif  // GSMB_REPORT_H_
