// The distributed execution tier: a verifying coordinator over local
// worker processes, plus the `remote` executor backend.
//
// RunSweepRemote fans a sweep's expanded variants out across N worker
// processes (`gsmb_cli worker`), connected over pipes with the
// length-prefixed wire protocol (src/dist/wire.h). The shared preparation
// travels as a prepared snapshot (gsmb/snapshot.h): the coordinator
// prepares ONCE (or reuses a caller-supplied snapshot), ships the file's
// path, and every worker loads it into its engine's prepare cache — so a
// 16-variant sweep over 4 workers still pays exactly one preparation.
//
// Verified, not trusted, at every seam:
//   * each worker's hello reports the digests of the preparation it
//     actually loaded; the coordinator compares them against the shipped
//     snapshot's header before dispatching any work;
//   * per-variant JobResults carry the usual provenance digests
//     (dataset fingerprint, prepared digest, order-independent retained-
//     set digest), so a distributed sweep is checkable against a
//     single-process RunSweep without shipping the pairs themselves.
//
// Scheduling is work-stealing by construction: workers PULL — the
// coordinator hands the next unclaimed variant to whichever worker
// finishes first, so skewed grids (BLAST vs LCP-heavy variants differ
// >2x in cost) never stall on a static stripe.
//
// Failure semantics: a worker death or timeout never aborts the sweep.
// The lost in-flight variant is re-dispatched to a surviving worker up to
// `max_retries` times; beyond that it carries a per-variant error Status
// in the SweepResult while its siblings complete normally.

#ifndef GSMB_REMOTE_H_
#define GSMB_REMOTE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "gsmb/engine.h"
#include "gsmb/status.h"
#include "gsmb/sweep.h"

namespace gsmb {

/// Test-only fault injection: after `after_results` results from worker
/// `kill_worker` (0-based), the coordinator SIGKILLs it right after
/// dispatching its next variant — deterministic mid-sweep worker death.
struct RemoteFaultInjection {
  int kill_worker = -1;  ///< worker index to kill; -1 disables
  uint64_t after_results = 1;
};

struct RemoteOptions {
  /// Local worker processes to spawn.
  size_t num_workers = 2;
  /// Worker executable; invoked as `<cmd> worker [--snapshot-in <file>]`.
  /// Empty = this process's own binary (/proc/self/exe) — the gsmb_cli
  /// coordinator and its workers are one binary.
  std::string worker_command;
  /// Prepared snapshot to ship. Empty = the coordinator prepares the
  /// base spec itself, writes a temporary snapshot, and removes it when
  /// the sweep finishes.
  std::string snapshot_path;
  /// A worker whose in-flight variant exceeds this wall-clock budget is
  /// killed and treated as dead. <= 0 disables the timeout.
  double worker_timeout_seconds = 600.0;
  /// Re-dispatch budget per variant after a worker death/timeout; beyond
  /// it the variant fails with a per-variant Status.
  size_t max_retries = 1;
  RemoteFaultInjection fault;
};

/// Distributed Engine::RunSweep: same SweepSpec in, same SweepResult
/// out — variants in expansion order, per-variant Status, merged
/// telemetry (plus `dist.*` counters: workers, deaths, retries, worker
/// event/ snapshot-load counts), cache stats of the coordinator's own
/// prepare. Top-level failure only when the sweep could not run at all
/// (invalid spec, snapshot mismatch, no worker ever became ready).
Result<SweepResult> RunSweepRemote(const SweepSpec& sweep,
                                   const RemoteOptions& options);

/// The `remote` executor backend: Execute(spec) runs the single job on
/// one worker process from `options`. Register it explicitly —
/// engine.Register(MakeRemoteBackend(options)) — then
/// engine.RunOn("remote", spec); it is not part of the default registry
/// because it needs a worker command and process-spawn rights.
std::unique_ptr<Executor> MakeRemoteBackend(RemoteOptions options = {});

/// Worker-process options (the `gsmb_cli worker` subcommand).
struct WorkerOptions {
  /// Prepared snapshot to load and adopt before serving jobs. Empty =
  /// the worker prepares on demand (correct, but pays its own prepare).
  std::string snapshot_path;
  /// Threads for the snapshot load's rebuild; 0 = hardware count.
  size_t num_threads = 0;
};

/// Runs the worker protocol over stdin/stdout (frames only — nothing else
/// may be written to stdout) until a shutdown frame or EOF. Returns the
/// process exit code; never throws.
int RunWorker(const WorkerOptions& options);

}  // namespace gsmb

#endif  // GSMB_REMOTE_H_
