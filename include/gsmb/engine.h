// gsmb::Engine — the one entry point over every execution backend.
//
// Before the facade the library exposed three divergent front doors:
// RunMetaBlocking (batch, core/), StreamingExecutor::Run (out-of-core,
// stream/) and MetaBlockingSession (incremental serving, serve/), each with
// its own config structs and error conventions. The Engine replaces that
// with one call:
//
//   gsmb::Engine engine;
//   gsmb::JobSpec spec = ...;                    // or JobSpec::FromFile()
//   gsmb::Result<gsmb::JobResult> result = engine.Run(spec);
//
// Backends implement the Executor interface and register by name; the spec
// selects one through execution.mode. `auto` resolves to streaming when the
// arena-bytes model (the same model the streaming executor sizes its shards
// with) says the in-memory candidate arrays would exceed
// execution.memory_budget_mb, and to batch otherwise.
//
// Staged execution. Run() is a thin Prepare + Execute composition:
// Prepare(spec) loads the dataset and builds the blocked representation —
// an immutable, shareable PreparedInputs handle served from an engine-level
// LRU cache keyed on the canonical JSON of the spec's dataset+blocking
// sections — and Execute(spec, prepared) runs the cheap per-configuration
// stages (features, train, classify, prune) against it. Repeated Run()s
// over the same dataset+blocking therefore prepare once; parameter sweeps
// are first-class through RunSweep (gsmb/sweep.h).
//
// Equivalence contract: for any spec every backend that Supports() it
// retains the SAME pairs. Batch and streaming are bit-identical by
// construction (they share the pruning aggregates and the training-sample
// replay). A serving cold build retains the same pairs when the spec is
// shard-pure-compatible — Dirty ER, token blocking, filter_ratio 1, a
// linear classifier — and execution.shards is 1; with more shards the
// session applies its documented per-shard union semantics instead.
// tests/api_engine_test.cc locks the three-way equivalence in for all 8
// pruning kinds; tests/api_prepare_test.cc locks cold == cached.

#ifndef GSMB_API_ENGINE_H_
#define GSMB_API_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/block_stats.h"
#include "core/pipeline.h"
#include "gsmb/job_spec.h"
#include "gsmb/prepared.h"
#include "gsmb/status.h"
#include "serve/session.h"

namespace gsmb {

struct SweepSpec;    // gsmb/sweep.h
struct SweepResult;  // gsmb/sweep.h

/// One retained comparison, by the profiles' external ids.
struct RetainedPair {
  std::string left;
  std::string right;

  bool operator==(const RetainedPair& other) const = default;
};

/// What a backend reports after running a job.
struct JobResult {
  /// Name of the executor that ran ("batch", "streaming", "serving").
  std::string backend;

  EffectivenessMetrics metrics;
  /// Candidate-set quality after blocking. The serving backend leaves this
  /// empty: a session never materialises the global candidate set.
  BlockingQuality blocking_quality;
  size_t num_blocks = 0;
  uint64_t num_candidates = 0;

  size_t training_size = 0;
  /// Classifier coefficients in raw feature space, intercept last (linear
  /// classifiers only).
  std::vector<double> model_coefficients;

  /// Run-time breakdown, seconds, single-sourced from the telemetry phase
  /// clock (obs::PhaseTimings through ApplyPhaseTimings) so every backend
  /// reports the same canonical phase set. `total_seconds` covers pairs +
  /// features + train + classify + prune (the paper's RT);
  /// `blocking_seconds` is reported separately, as the paper treats
  /// blocking as fixed preprocessing.
  double blocking_seconds = 0.0;
  /// Candidate-pair generation: streaming regenerates pairs per shard;
  /// batch reports the prepared handle's one-off candidate-array
  /// materialisation cost here.
  double generate_seconds = 0.0;
  double feature_seconds = 0.0;
  double train_seconds = 0.0;
  double classify_seconds = 0.0;
  double prune_seconds = 0.0;
  double total_seconds = 0.0;

  /// Execution shape: candidate-space slices (streaming) or key shards
  /// (serving); 1 for batch. `sweeps` = full passes over the candidate
  /// space (streaming only).
  size_t shards_used = 1;
  size_t sweeps = 0;

  /// Retained pairs by external id, in ascending (left, right) internal-id
  /// order. Populated only when spec.output.keep_retained is set.
  std::vector<RetainedPair> retained;
  /// Rows written to spec.output.retained_csv (0 when no path was given).
  size_t retained_csv_rows = 0;

  /// Per-run metric snapshot: counters derived from this run's own numbers
  /// (pairs.generated, pairs.retained, ...) plus `phase.<name>.seconds`
  /// gauges. Built per job, never from global state, so concurrent sweep
  /// variants carry independent, deterministic snapshots.
  obs::MetricsSnapshot telemetry;

  // -- Provenance (gsmb/digest.h, gsmb/report.h) ----------------------------

  /// Content fingerprint of the inputs this run consumed
  /// (obs::DatasetFingerprint over profiles + ground truth).
  uint64_t dataset_fingerprint = 0;
  /// Digest of the blocked preparation executed against
  /// (obs::PreparedStreamDigest). 0 for backends that never build the
  /// global blocked representation (serving builds per-shard sessions),
  /// and treated as "not applicable" by report comparison.
  uint64_t prepared_digest = 0;
  /// Order-independent digest of the retained-pair set
  /// (obs::PairSetDigest over external-id pairs). Computed by every
  /// backend on every run — with or without keep_retained or a CSV path —
  /// and bit-identical across backends, thread counts and shard counts
  /// whenever the retained sets match. This is the semantic-drift signal
  /// `gsmb_cli report diff` and bench_diff.py key on.
  uint64_t retained_digest = 0;
  /// Retained pairs behind `retained_digest` (|retained set|; also
  /// pairs.retained in `telemetry`).
  uint64_t retained_count = 0;
};

/// A registered execution backend. Implementations load the spec's dataset,
/// run the full pipeline and report a JobResult; they never call
/// std::exit() and never let an exception escape (the Engine converts any
/// that do into StatusCode::kInternal).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Registry name; execution.mode values resolve to these.
  virtual std::string name() const = 0;

  /// OK when this backend can execute the (already Validate()d) spec;
  /// otherwise a diagnostic naming the offending setting and the fix.
  virtual Status Supports(const JobSpec& spec) const = 0;

  virtual Result<JobResult> Execute(const JobSpec& spec) const = 0;

  /// True when ExecutePrepared() is implemented. The Engine then prepares
  /// the spec (through its cache) and calls ExecutePrepared instead of
  /// Execute — the staged path batch and streaming take. Backends that
  /// load their own inputs keep the default (serving does: a session
  /// tokenizes its own ingests, so a blocked preparation is dead weight).
  virtual bool AcceptsPrepared() const { return false; }

  /// Executes against an already-prepared input (same dataset+blocking as
  /// the spec). Must retain exactly the pairs Execute(spec) would.
  virtual Result<JobResult> ExecutePrepared(const JobSpec& spec,
                                            const PreparedInputs& prepared) const;
};

/// Construction-time knobs of the Engine's prepare cache.
struct EngineOptions {
  /// Approximate byte budget of cached preparations, in MiB; after an
  /// insert, least-recently-used entries are evicted until the estimated
  /// resident total fits. 0 = no byte budget.
  size_t prepare_cache_budget_mb = 1024;
  /// Upper bound on cached preparations (LRU beyond it). 0 disables
  /// caching entirely: Prepare() still works but every call builds fresh.
  size_t prepare_cache_max_entries = 16;
};

class Engine {
 public:
  /// Constructs with the three standard backends registered.
  Engine();
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an additional backend. Fails on a duplicate name — a new
  /// workload becomes a registration, never a fourth bespoke entry point.
  Status Register(std::unique_ptr<Executor> executor);

  /// Registered backend names, registration order.
  std::vector<std::string> BackendNames() const;
  /// nullptr when unknown.
  const Executor* FindBackend(const std::string& name) const;

  /// Validates the spec, resolves execution.mode (including `auto`) and
  /// dispatches — a thin Prepare + Execute composition, so repeated runs
  /// over one dataset+blocking reuse the cached preparation. All failures —
  /// validation, unsupported spec, missing files, internal errors — come
  /// back as the Result's Status.
  Result<JobResult> Run(const JobSpec& spec) const;

  /// Runs on an explicitly named backend, bypassing mode resolution (the
  /// spec's execution.mode is ignored). For registered custom backends and
  /// cross-backend comparison harnesses.
  Result<JobResult> RunOn(const std::string& backend,
                          const JobSpec& spec) const;

  /// Convenience: JobSpec::FromFile + Validate + Run.
  Result<JobResult> RunFile(const std::string& path) const;

  // -- Staged execution -------------------------------------------------------

  /// Loads the spec's dataset and builds the blocked representation,
  /// serving the handle from the engine's LRU cache when an equal
  /// dataset+blocking preparation is resident. Concurrent Prepare calls
  /// for the same key build once and share the handle. The returned handle
  /// outlives any later eviction.
  Result<PreparedHandle> Prepare(const JobSpec& spec) const;

  /// Runs the per-configuration stages of `spec` against an
  /// already-prepared input. The spec's dataset+blocking sections must
  /// match the handle's cache key (rejected otherwise — a spec must never
  /// silently execute against someone else's blocks). Resolves
  /// execution.mode exactly like Run(), including `auto`. A backend that
  /// does not AcceptsPrepared() (serving, which must tokenize its own
  /// ingests; custom executors) runs its legacy Execute(spec) path
  /// instead, loading its own inputs.
  Result<JobResult> Execute(const JobSpec& spec,
                            const PreparedInputs& prepared) const;

  /// Seeds the prepare cache with an externally built handle — e.g. one
  /// loaded from a prepared snapshot (gsmb/snapshot.h) — under the
  /// handle's own cache key, so later Run/Prepare/RunSweep calls over the
  /// same dataset+blocking hit the cache instead of rebuilding. This is
  /// how a distributed worker shares the coordinator's one preparation.
  /// Counts neither a hit nor a miss; a no-op when the key is already
  /// cached. Fails when the handle is null/keyless or the cache is
  /// disabled (prepare_cache_max_entries == 0).
  Status AdoptPrepared(PreparedHandle prepared) const;

  /// Expands the sweep's grid, prepares the shared dataset+blocking once
  /// (through the cache) and executes every variant in parallel against
  /// the shared handle. Per-variant failures are reported in the
  /// SweepResult, never aborting sibling variants. See gsmb/sweep.h.
  Result<SweepResult> RunSweep(const SweepSpec& sweep) const;

  /// Counters of the prepare cache (hits/misses/evictions, residency).
  PrepareCacheStats prepare_cache_stats() const;

  /// Builds a LIVE serving session from the spec (train model, ingest the
  /// dataset, refresh) for long-lived incremental use — the serve REPL and
  /// the incremental example sit on this. The spec must satisfy the
  /// serving backend's Supports().
  Result<MetaBlockingSession> OpenSession(const JobSpec& spec) const;

 private:
  struct PrepareCache;

  /// Supports() check + staged-or-legacy dispatch on one executor.
  Result<JobResult> Dispatch(const Executor& executor,
                             const JobSpec& spec) const;
  /// Re-runs the cache's eviction policy (lazy batch materialisation can
  /// grow an entry after its insert-time check).
  void EnforcePrepareBudget() const;
  /// The backend name `spec.execution.mode` resolves to; `auto` consults
  /// the arena-bytes model against `prepared`'s candidate count.
  std::string ResolveMode(const JobSpec& spec,
                          const PreparedInputs& prepared) const;

  EngineOptions options_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::unique_ptr<PrepareCache> cache_;
};

}  // namespace gsmb

#endif  // GSMB_API_ENGINE_H_
