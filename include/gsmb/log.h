// Structured event log: leveled, thread-safe, JSONL-exportable — the
// second floor of src/obs/, sharing the telemetry subsystem's design
// contract (gsmb/telemetry.h):
//
//   * Compiled in, but cheap when off. No sink installed means every
//     GSMB_LOG site is one relaxed atomic load and a branch — the field
//     list is never constructed, no clock read, no allocation, no lock.
//   * Per-thread aggregation. Each thread appends records to its own
//     slot inside the sink (its own uncontended mutex), so logging adds
//     no cross-thread ordering and cannot perturb retained-pair
//     determinism.
//   * Deterministic flush ordering. Every record carries a logical
//     thread id (registration order, mirroring MetricsSnapshot) and a
//     per-thread sequence number; exports merge slots sorted by
//     (tid, seq), so the record order of an export never depends on
//     scheduling. Timestamps are carried for humans but never ordered
//     on.
//
// Events are structured, not printf strings: a dotted event name
// ("prepare.done", "sweep.variant.done") plus typed key/value fields,
// exported one JSON object per line (JSONL). Diagnostics inside src/
// go through this log — lint_determinism.py forbids direct std::cout /
// std::cerr writes there.

#ifndef GSMB_LOG_H_
#define GSMB_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gsmb {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// One typed key/value of a log record. The constructor set covers the
/// integral types unambiguously on any platform (int64_t/uint64_t/size_t
/// are typedefs of these), so call sites pass values as-is.
struct LogField {
  enum class Kind { kString, kU64, kI64, kF64, kBool };

  std::string key;
  Kind kind = Kind::kString;
  std::string str;   // kString
  uint64_t u64 = 0;  // kU64, kBool (0/1)
  int64_t i64 = 0;   // kI64
  double f64 = 0.0;  // kF64

  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), u64(v ? 1 : 0) {}
  LogField(std::string_view k, double v) : key(k), kind(Kind::kF64), f64(v) {}
  LogField(std::string_view k, int v)
      : key(k), kind(Kind::kI64), i64(v) {}
  LogField(std::string_view k, long v)
      : key(k), kind(Kind::kI64), i64(v) {}
  LogField(std::string_view k, long long v)
      : key(k), kind(Kind::kI64), i64(v) {}
  LogField(std::string_view k, unsigned v)
      : key(k), kind(Kind::kU64), u64(v) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), kind(Kind::kU64), u64(v) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::kU64), u64(v) {}

  bool operator==(const LogField& other) const = default;
};

/// One logged event. `tid` is the logical thread id (slot registration
/// order inside the sink); `seq` the per-thread record index. (tid, seq)
/// is the deterministic export order; `ts_us` (microseconds since the
/// process telemetry epoch, shared with span timestamps) is informational.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string event;
  std::vector<LogField> fields;
  double ts_us = 0.0;
  uint32_t tid = 0;
  uint64_t seq = 0;
};

/// Collects log records from any number of threads. Same slot protocol
/// as TelemetrySink: recording locks only the calling thread's own slot;
/// exports lock the slot list and merge deterministically. A sink must
/// outlive every thread that records into it while installed.
class LogSink {
 public:
  explicit LogSink(LogLevel min_level = LogLevel::kDebug);
  ~LogSink();
  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  LogLevel min_level() const { return min_level_; }
  bool Enabled(LogLevel level) const { return level >= min_level_; }

  /// Appends one record to the calling thread's slot (thread-safe).
  /// Levels below min_level are dropped (GSMB_LOG checks before building
  /// the field list, so a dropped record costs two branches).
  void Log(LogLevel level, std::string_view event,
           std::vector<LogField> fields);

  /// All records, merged across threads, sorted by (tid, seq) — the
  /// deterministic flush order (thread-safe).
  std::vector<LogRecord> Records() const;

  /// JSONL export: one JSON object per record, in Records() order, each
  /// line `{"ts_us":..,"tid":..,"seq":..,"level":..,"event":..,
  /// "fields":{...}}`.
  std::string JsonLines() const;

 private:
  struct ThreadState;
  ThreadState* StateForThisThread();

  LogLevel min_level_;
  mutable std::mutex mu_;  // guards thread_states_ (slot list only)
  std::vector<std::unique_ptr<ThreadState>> thread_states_;
};

// ---------------------------------------------------------------------------
// Global installation — the one relaxed atomic the fast path reads.

namespace detail {
extern std::atomic<LogSink*> g_log_sink;
}  // namespace detail

/// The installed log sink, or nullptr. Relaxed load: GSMB_LOG sites
/// branch on this and do nothing else when logging is off.
inline LogSink* CurrentLogSink() {
  return detail::g_log_sink.load(std::memory_order_relaxed);
}

/// Installs `sink` process-wide (nullptr uninstalls). The caller owns
/// the sink and must uninstall before destroying it; threads logging
/// concurrently with Install may attribute to either sink.
void InstallLogSink(LogSink* sink);

/// GSMB_LOG(level, "event.name", {"key", value}, ...): logs a structured
/// event when a sink is installed and the level passes its floor. The
/// field initializers are inside the sink-checked branch, so with no
/// sink the whole statement is one relaxed load plus a branch.
#define GSMB_LOG(level, event, ...)                                         \
  do {                                                                      \
    if (::gsmb::obs::LogSink* gsmb_log_sink_ =                              \
            ::gsmb::obs::CurrentLogSink()) {                                \
      if (gsmb_log_sink_->Enabled(level)) {                                 \
        gsmb_log_sink_->Log(                                                \
            level, event,                                                   \
            std::vector<::gsmb::obs::LogField>{__VA_ARGS__});               \
      }                                                                     \
    }                                                                       \
  } while (0)

#define GSMB_LOG_DEBUG(event, ...) \
  GSMB_LOG(::gsmb::obs::LogLevel::kDebug, event __VA_OPT__(, ) __VA_ARGS__)
#define GSMB_LOG_INFO(event, ...) \
  GSMB_LOG(::gsmb::obs::LogLevel::kInfo, event __VA_OPT__(, ) __VA_ARGS__)
#define GSMB_LOG_WARN(event, ...) \
  GSMB_LOG(::gsmb::obs::LogLevel::kWarn, event __VA_OPT__(, ) __VA_ARGS__)
#define GSMB_LOG_ERROR(event, ...) \
  GSMB_LOG(::gsmb::obs::LogLevel::kError, event __VA_OPT__(, ) __VA_ARGS__)

}  // namespace obs
}  // namespace gsmb

#endif  // GSMB_LOG_H_
