// gsmb::SweepSpec — a parameter sweep as a first-class, declarative job.
//
// The paper's experiment grids (pruning kind x feature set x classifier x
// training size x seed over one dataset) were previously caller-side loops,
// each Run() re-preparing blocking from scratch. A SweepSpec names the grid
// once — a base JobSpec plus per-axis value lists — and Engine::RunSweep
// expands it, prepares each distinct dataset+blocking exactly once (through
// the engine's prepare cache; without a scheme axis that is ONE shared
// preparation), executes the variants in parallel against the shared
// PreparedInputs, and reports one structured SweepResult.
//
// Like JobSpec, a SweepSpec serializes to versioned JSON with
// reject-don't-ignore validation:
//
//   {
//     "version": 1,
//     "base": { ...JobSpec object, version and all... },
//     "axes": {
//       "scheme":   ["token", "minhash-lsh", ...],
//       "pruning":  ["bcl", "wep", ...],
//       "features": ["blast", "2014"],
//       "classifier": ["logreg"],
//       "labels_per_class": [25, 250],
//       "seeds": [0, 1, 2]
//     },
//     "retained_dir": "out/"          // optional
//   }
//
// An empty (or absent) axis contributes the base spec's value, so the grid
// size is the product of max(1, |axis|) over the six axes.

#ifndef GSMB_API_SWEEP_H_
#define GSMB_API_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/status.h"

namespace gsmb {

/// Version written by SweepSpec::ToJson() and accepted by FromJson().
inline constexpr uint64_t kSweepSpecVersion = 1;

/// The swept axes. Empty axis = the base spec's single value.
struct SweepAxes {
  /// Blocking-scheme names from the scheme registry. The one axis that
  /// changes the preparation itself: each distinct scheme gets its own
  /// prepared handle (one preparation per scheme, held for the sweep).
  std::vector<std::string> schemes;
  std::vector<PruningKind> pruning;
  std::vector<FeatureSet> features;
  std::vector<ClassifierKind> classifiers;
  std::vector<size_t> labels_per_class;
  std::vector<uint64_t> seeds;
};

struct SweepSpec {
  uint64_t version = kSweepSpecVersion;
  /// Every variant inherits this spec; only the axed fields vary. The
  /// base's dataset+blocking sections define the ONE shared preparation.
  JobSpec base;
  SweepAxes axes;
  /// When non-empty, every variant's retained pairs are written to
  /// `<retained_dir>/<variant label>.csv` (the directory is created).
  /// base.output.retained_csv must stay empty — a single path cannot hold
  /// a grid of results.
  std::string retained_dir;

  /// Canonical JSON (schema above); re-parses to an equal spec.
  std::string ToJson(int indent = 2) const;
  static Result<SweepSpec> FromJson(const std::string& text);
  static Result<SweepSpec> FromFile(const std::string& path);

  /// base.Validate() plus sweep-level rules (no per-variant output
  /// collisions, non-empty grid).
  Status Validate() const;

  /// Product of max(1, |axis|) over the axes.
  size_t GridSize() const;

  /// The expanded grid, deterministic order: scheme outermost, then
  /// pruning, features, classifier, labels_per_class, seeds innermost.
  std::vector<JobSpec> Expand() const;

  bool operator==(const SweepSpec& other) const;
};

/// Deterministic, filesystem-safe label of one expanded variant:
/// "<scheme>_<pruning>_<features>_<classifier>_l<labels>_s<seed>" (commas
/// of a custom feature list become '+').
std::string SweepVariantLabel(const JobSpec& variant);

/// One executed grid point.
struct SweepVariant {
  JobSpec spec;
  std::string label;
  /// OK when `result` is meaningful; a failed variant carries its
  /// diagnostic here and never aborts the rest of the sweep.
  Status status;
  JobResult result;
};

struct SweepResult {
  /// Expansion order (see SweepSpec::Expand) — independent of the parallel
  /// execution order.
  std::vector<SweepVariant> variants;
  /// Prepare-cache activity of this sweep: a cold sweep reports one miss
  /// per distinct dataset+blocking (without a scheme axis, exactly 1); a
  /// sweep over already-cached preparations reports hits instead.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// One-off preparation cost, seconds, summed over the sweep's distinct
  /// prepared handles.
  double prepare_seconds = 0.0;
  /// Whole-sweep wall clock (prepare + all variants), seconds.
  double total_seconds = 0.0;
  /// Merge of every successful variant's per-run snapshot (counters sum,
  /// gauges keep their max) plus this sweep's prepare-cache activity as
  /// `prepare.cache.{hit,miss}` counters. Variant snapshots are job-local,
  /// so the merge is deterministic regardless of execution interleaving.
  obs::MetricsSnapshot telemetry;

  bool all_ok() const {
    for (const SweepVariant& v : variants) {
      if (!v.status.ok()) return false;
    }
    return true;
  }
};

}  // namespace gsmb

#endif  // GSMB_API_SWEEP_H_
