// ExecutionOptions: the one place execution knobs live.
//
// Before the facade, the worker-thread count was plumbed three times in
// parallel — BlockingOptions::num_threads, MetaBlockingConfig::num_threads
// and PruningContext::num_threads (plus serving/streaming copies) — and
// every caller had to remember to set all of them to the same value. The
// structs now embed one shared ExecutionOptions, and the Engine threads a
// single instance from the JobSpec through every layer.
//
// Invariant carried over from the per-struct fields: execution options
// never change results. Every parallel path in the library is bit-identical
// to its serial counterpart for any thread count.

#ifndef GSMB_API_EXECUTION_H_
#define GSMB_API_EXECUTION_H_

#include <cstddef>

namespace gsmb {

struct ExecutionOptions {
  /// Worker threads for blocking, feature extraction, classification and
  /// pruning. 1 = serial; results are identical for any value.
  size_t num_threads = 1;
};

}  // namespace gsmb

#endif  // GSMB_API_EXECUTION_H_
