// gsmb — command-line front end for the library.
//
// Batch mode runs the full (Generalized) Supervised Meta-blocking pipeline
// on CSV data and prints the retained pairs or their evaluation.
//
// Usage:
//   gsmb --e1 a.csv [--e2 b.csv] --gt matches.csv
//        [--pruning blast|rcnp|bcl|wep|wnp|rwnp|cep|cnp]
//        [--classifier logreg|svc|nb]
//        [--features blast|rcnp|2014|all]
//        [--labels N]            balanced labelled pairs per class (25)
//        [--seed N]              training-sample seed (0)
//        [--threads N]           worker threads for blocking, features,
//                                classification and pruning (1; 0 = all
//                                hardware threads). Results are identical
//                                for any thread count.
//        [--streaming]           bounded-memory out-of-core execution
//                                (stream/): never materialises the global
//                                candidate set; retained pairs are
//                                bit-identical to the in-memory path.
//        [--shards N]            candidate-space slices for --streaming
//                                (16); more shards = lower peak memory.
//        [--memory-budget-mb M]  raise the shard count until one shard's
//                                arena fits M MiB (implies nothing else;
//                                combines with --shards by taking the
//                                stricter of the two).
//        [--out retained.csv]    write retained pairs as CSV
//
// Omitting --e2 switches to Dirty ER (deduplication of --e1).
// --shards/--memory-budget-mb without --streaming, --shards 0, and
// --memory-budget-mb 0 are contradictions and rejected up front.
//
// Serve mode keeps a long-lived incremental MetaBlockingSession resident
// and drives it with commands from stdin (see serve/session.h):
//
//   gsmb serve --data a.csv --gt matches.csv
//        [--shards 16] [--threads 1] [--max-block-size 200]
//        [--pruning blast] [--classifier logreg] [--features blast]
//        [--labels 25] [--seed 0]
//   gsmb serve --snapshot-in session.snap [--threads N]
//
//   Commands: ingest <csv> | refresh | query <external-id> |
//             queryfile <csv> | retained <csv> | save <path> | stats |
//             help | quit
//
// The ground truth serves both as the labelled sample pool and as the
// evaluation oracle; in a production run you would pass only the labelled
// subset you actually have.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "datasets/io.h"
#include "serve/session.h"
#include "serve/serving_model.h"
#include "stream/streaming_dataset.h"
#include "stream/streaming_executor.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

void PrintUsage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: gsmb --e1 a.csv [--e2 b.csv] --gt matches.csv\n"
               "            [--pruning blast] [--classifier logreg]\n"
               "            [--features blast] [--labels 25] [--seed 0]\n"
               "            [--threads 1] [--out retained.csv]\n"
               "            [--streaming [--shards 16]\n"
               "             [--memory-budget-mb M]]\n"
               "   or: gsmb serve --data a.csv --gt matches.csv\n"
               "            [--shards 16] [--threads 1]\n"
               "            [--max-block-size 200] [--pruning blast]\n"
               "            [--classifier logreg] [--features blast]\n"
               "            [--labels 25] [--seed 0]\n"
               "   or: gsmb serve --snapshot-in session.snap [--threads 1]\n");
}

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  PrintUsage(stderr);
  std::exit(2);
}

PruningKind ParsePruning(const std::string& s) {
  static const std::map<std::string, PruningKind> kMap = {
      {"bcl", PruningKind::kBCl},   {"wep", PruningKind::kWep},
      {"wnp", PruningKind::kWnp},   {"rwnp", PruningKind::kRwnp},
      {"blast", PruningKind::kBlast}, {"cep", PruningKind::kCep},
      {"cnp", PruningKind::kCnp},   {"rcnp", PruningKind::kRcnp}};
  auto it = kMap.find(s);
  if (it == kMap.end()) Usage("unknown --pruning value");
  return it->second;
}

ClassifierKind ParseClassifier(const std::string& s) {
  if (s == "logreg") return ClassifierKind::kLogisticRegression;
  if (s == "svc") return ClassifierKind::kLinearSvc;
  if (s == "nb") return ClassifierKind::kGaussianNaiveBayes;
  Usage("unknown --classifier value");
}

FeatureSet ParseFeatures(const std::string& s) {
  if (s == "blast") return FeatureSet::BlastOptimal();
  if (s == "rcnp") return FeatureSet::RcnpOptimal();
  if (s == "2014") return FeatureSet::Paper2014();
  if (s == "all") return FeatureSet::All();
  Usage("unknown --features value");
}

uint64_t ParseNumber(const char* flag, const std::string& s) {
  // std::stoull alone would accept "-1" (it wraps modulo 2^64), so require
  // every character to be a digit.
  const bool all_digits =
      !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
  if (all_digits) {
    try {
      return std::stoull(s);
    } catch (const std::exception&) {
      // out of range; fall through to the usage error
    }
  }
  Usage((std::string(flag) + " expects a non-negative integer, got '" + s +
         "'").c_str());
}

/// Loads a profile CSV with clear diagnostics: a missing path or a file
/// that parses to zero profiles is an immediate, explicit error instead of
/// an empty collection that fails later in some opaque way.
EntityCollection LoadProfilesChecked(const std::string& path,
                                     const std::string& role) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error(role + " dataset path does not exist: " + path);
  }
  EntityCollection collection = LoadCollectionCsv(path, role);
  if (collection.empty()) {
    throw std::runtime_error(role + " dataset " + path +
                             " parses to zero profiles");
  }
  return collection;
}

void RequireFileExists(const std::string& path, const char* role) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error(std::string(role) + " path does not exist: " +
                             path);
  }
}

// ---------------------------------------------------------------------------
// serve mode
// ---------------------------------------------------------------------------

void PrintServeHelp() {
  std::printf(
      "commands:\n"
      "  ingest <csv>     add profiles from id,attribute,value CSV\n"
      "  refresh          re-block + re-prune dirty shards\n"
      "  query <id>       candidates for the resident profile <id>\n"
      "  queryfile <csv>  query every profile of the CSV (top 3 each)\n"
      "  retained <csv>   write the retained pairs as CSV\n"
      "  save <path>      write a session snapshot\n"
      "  stats            session counters\n"
      "  help             this text\n"
      "  quit             exit\n");
}

void PrintStats(const MetaBlockingSession& session) {
  const SessionStats stats = session.Stats();
  std::printf(
      "profiles %zu | shards %zu (%zu dirty) | blocks %zu | candidates %zu "
      "| retained %zu\n",
      stats.num_profiles, stats.num_shards, stats.dirty_shards,
      stats.num_blocks, stats.num_candidates, stats.num_retained);
}

void PrintQuery(const MetaBlockingSession& session, const EntityProfile& probe,
                size_t top_k,
                std::optional<EntityId> exclude = std::nullopt) {
  Stopwatch watch;
  const std::vector<QueryMatch> matches =
      session.QueryCandidates(probe, top_k, exclude);
  const double ms = watch.ElapsedMillis();
  if (matches.empty()) {
    std::printf("  no candidates above threshold (%.2f ms)\n", ms);
    return;
  }
  for (size_t i = 0; i < matches.size(); ++i) {
    std::printf("  %zu. %s  p=%.4f\n", i + 1,
                session.profiles()[matches[i].id].external_id().c_str(),
                matches[i].probability);
  }
  std::printf("  (%zu candidates, %.2f ms)\n", matches.size(), ms);
}

int RunServeLoop(MetaBlockingSession& session) {
  PrintStats(session);
  std::printf("ready — type 'help' for commands\n");

  // external id -> resident id, extended lazily as ingests grow the
  // collection (a linear FindByExternalId scan per query would not keep up
  // with a production-sized resident set).
  std::unordered_map<std::string, EntityId> id_index;
  size_t indexed = 0;
  auto resident_id =
      [&](const std::string& external_id) -> std::optional<EntityId> {
    const EntityCollection& profiles = session.profiles();
    for (; indexed < profiles.size(); ++indexed) {
      id_index.emplace(profiles[static_cast<EntityId>(indexed)].external_id(),
                       static_cast<EntityId>(indexed));
    }
    auto it = id_index.find(external_id);
    if (it == id_index.end()) return std::nullopt;
    return it->second;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream parts(line);
    std::string command;
    parts >> command;
    if (command.empty()) continue;
    try {
      if (command == "quit" || command == "exit") {
        break;
      } else if (command == "help") {
        PrintServeHelp();
      } else if (command == "stats") {
        PrintStats(session);
      } else if (command == "refresh") {
        Stopwatch watch;
        const size_t refreshed = session.Refresh();
        std::printf("refreshed %zu shard%s in %.1f ms\n", refreshed,
                    refreshed == 1 ? "" : "s", watch.ElapsedMillis());
      } else if (command == "ingest") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("ingest needs a path");
        const EntityCollection batch = LoadProfilesChecked(path, "ingest");
        Stopwatch watch;
        session.AddProfiles(batch.profiles());
        std::printf(
            "ingested %zu profiles in %.1f ms; %zu shards now dirty "
            "(run 'refresh')\n",
            batch.size(), watch.ElapsedMillis(), session.DirtyShardCount());
      } else if (command == "query") {
        std::string external_id;
        parts >> external_id;
        if (external_id.empty()) {
          throw std::runtime_error("query needs an external id");
        }
        const std::optional<EntityId> self = resident_id(external_id);
        if (!self.has_value()) {
          throw std::runtime_error("no resident profile with id " +
                                   external_id);
        }
        // The probe is resident: exclude it from its own candidates.
        PrintQuery(session, session.profiles()[*self], 10, *self);
      } else if (command == "queryfile") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("queryfile needs a path");
        const EntityCollection probes = LoadProfilesChecked(path, "query");
        for (const EntityProfile& probe : probes.profiles()) {
          std::printf("%s:\n", probe.external_id().c_str());
          // A probe that is already resident (same external id) must not
          // match itself.
          PrintQuery(session, probe, 3, resident_id(probe.external_id()));
        }
      } else if (command == "retained") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("retained needs a path");
        const std::vector<CandidatePair> retained = session.RetainedPairs();
        std::vector<CsvRow> rows;
        rows.reserve(retained.size() + 1);
        rows.push_back({"left_id", "right_id"});
        for (const CandidatePair& p : retained) {
          rows.push_back({session.profiles()[p.left].external_id(),
                          session.profiles()[p.right].external_id()});
        }
        WriteCsvFile(path, rows);
        std::printf("wrote %zu retained pairs to %s\n", retained.size(),
                    path.c_str());
      } else if (command == "save") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("save needs a path");
        session.Save(path);
        std::printf("saved session to %s\n", path.c_str());
      } else {
        std::printf("unknown command '%s' — type 'help'\n", command.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}

int ServeMain(int argc, char** argv) {
  std::string data_path, gt_path, snapshot_path;
  SessionOptions options;
  options.max_block_size = 200;
  ServingModelTraining training;
  training.train_per_class = 25;
  FeatureSet features = FeatureSet::BlastOptimal();
  bool threads_given = false;
  // A restored snapshot carries its own options and model; every flag that
  // would contradict them is rejected rather than silently ignored.
  std::string bootstrap_flag;

  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) Usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    auto bootstrap_only = [&](const char* flag) {
      bootstrap_flag = flag;
      return flag;
    };
    if (std::strcmp(argv[i], "--data") == 0) {
      data_path = need_value("--data");
    } else if (std::strcmp(argv[i], "--gt") == 0) {
      gt_path = need_value("--gt");
    } else if (std::strcmp(argv[i], "--snapshot-in") == 0) {
      snapshot_path = need_value("--snapshot-in");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      options.num_shards = static_cast<size_t>(
          ParseNumber("--shards", need_value(bootstrap_only("--shards"))));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.num_threads = static_cast<size_t>(
          ParseNumber("--threads", need_value("--threads")));
      if (options.num_threads == 0) options.num_threads = HardwareThreads();
      threads_given = true;
    } else if (std::strcmp(argv[i], "--max-block-size") == 0) {
      options.max_block_size = static_cast<size_t>(ParseNumber(
          "--max-block-size", need_value(bootstrap_only("--max-block-size"))));
    } else if (std::strcmp(argv[i], "--pruning") == 0) {
      options.pruning = ParsePruning(need_value(bootstrap_only("--pruning")));
    } else if (std::strcmp(argv[i], "--classifier") == 0) {
      training.classifier =
          ParseClassifier(need_value(bootstrap_only("--classifier")));
    } else if (std::strcmp(argv[i], "--features") == 0) {
      features = ParseFeatures(need_value(bootstrap_only("--features")));
    } else if (std::strcmp(argv[i], "--labels") == 0) {
      training.train_per_class = static_cast<size_t>(
          ParseNumber("--labels", need_value(bootstrap_only("--labels"))));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      training.seed =
          ParseNumber("--seed", need_value(bootstrap_only("--seed")));
    } else if (std::strcmp(argv[i], "--streaming") == 0 ||
               std::strcmp(argv[i], "--memory-budget-mb") == 0) {
      Usage((std::string(argv[i]) +
             " drives the one-shot batch pipeline and contradicts serve "
             "mode, which is incremental by construction — drop the flag "
             "or run without 'serve'")
                .c_str());
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    } else {
      Usage((std::string("unknown serve flag ") + argv[i]).c_str());
    }
  }
  if (options.num_shards == 0) {
    Usage("--shards 0 is contradictory: a session needs at least one shard");
  }

  if (snapshot_path.empty() && (data_path.empty() || gt_path.empty())) {
    Usage("serve needs --data and --gt (or --snapshot-in)");
  }
  if (!snapshot_path.empty()) {
    if (!data_path.empty() || !gt_path.empty()) {
      Usage("--snapshot-in restores a full session; it cannot be combined "
            "with --data/--gt");
    }
    if (!bootstrap_flag.empty()) {
      Usage((bootstrap_flag +
             " configures a new session and is ignored by --snapshot-in "
             "(the snapshot's options govern); only --threads applies")
                .c_str());
    }
  }

  try {
    if (!snapshot_path.empty()) {
      RequireFileExists(snapshot_path, "--snapshot-in");
      Stopwatch watch;
      MetaBlockingSession session = MetaBlockingSession::Load(snapshot_path);
      // The snapshot's options govern the session's semantics; the thread
      // count is purely an execution knob, so the flag wins when given.
      if (threads_given) session.set_num_threads(options.num_threads);
      std::printf("restored session from %s in %.1f ms\n",
                  snapshot_path.c_str(), watch.ElapsedMillis());
      return RunServeLoop(session);
    }

    const EntityCollection data = LoadProfilesChecked(data_path, "--data");
    RequireFileExists(gt_path, "--gt");
    const GroundTruth gt =
        LoadGroundTruthCsv(gt_path, data, data, /*dirty=*/true);
    std::printf("loaded %zu profiles, %zu labelled matches\n", data.size(),
                gt.size());

    training.num_threads = options.num_threads;
    Stopwatch watch;
    ServingModel model = TrainServingModel(data, gt, features, training);
    std::printf("trained %s serving model on %s in %.1f ms\n",
                ClassifierKindName(training.classifier),
                features.ToString().c_str(), watch.ElapsedMillis());

    MetaBlockingSession session(options, std::move(model));
    watch.Restart();
    session.AddProfiles(data.profiles());
    session.Refresh();
    std::printf("bootstrapped %zu-shard session in %.1f ms\n",
                session.options().num_shards, watch.ElapsedMillis());
    return RunServeLoop(session);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return ServeMain(argc, argv);
  }

  std::string e1_path, e2_path, gt_path, out_path;
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 25;
  size_t threads = 1;
  bool streaming = false;
  bool shards_given = false;
  StreamingOptions stream_options;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) Usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--e1") == 0) {
      e1_path = need_value("--e1");
    } else if (std::strcmp(argv[i], "--e2") == 0) {
      e2_path = need_value("--e2");
    } else if (std::strcmp(argv[i], "--gt") == 0) {
      gt_path = need_value("--gt");
    } else if (std::strcmp(argv[i], "--pruning") == 0) {
      config.pruning = ParsePruning(need_value("--pruning"));
    } else if (std::strcmp(argv[i], "--classifier") == 0) {
      config.classifier = ParseClassifier(need_value("--classifier"));
    } else if (std::strcmp(argv[i], "--features") == 0) {
      config.features = ParseFeatures(need_value("--features"));
    } else if (std::strcmp(argv[i], "--labels") == 0) {
      config.train_per_class = static_cast<size_t>(
          ParseNumber("--labels", need_value("--labels")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = ParseNumber("--seed", need_value("--seed"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<size_t>(
          ParseNumber("--threads", need_value("--threads")));
      if (threads == 0) threads = HardwareThreads();
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      stream_options.num_shards = static_cast<size_t>(
          ParseNumber("--shards", need_value("--shards")));
      shards_given = true;
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0) {
      stream_options.memory_budget_mb = static_cast<size_t>(ParseNumber(
          "--memory-budget-mb", need_value("--memory-budget-mb")));
      if (stream_options.memory_budget_mb == 0) {
        Usage("--memory-budget-mb 0 is contradictory: a zero-byte arena "
              "cannot hold any candidates (omit the flag for no budget)");
      }
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value("--out");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    } else {
      Usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (e1_path.empty() || gt_path.empty()) Usage("--e1 and --gt are required");
  if (shards_given && stream_options.num_shards == 0) {
    Usage("--shards 0 is contradictory: streaming needs at least one "
          "candidate-space slice");
  }
  if (!streaming && (shards_given || stream_options.memory_budget_mb > 0)) {
    Usage("--shards/--memory-budget-mb only shape --streaming execution; "
          "add --streaming or drop them");
  }

  try {
    const bool dirty = e2_path.empty();
    EntityCollection e1 = LoadProfilesChecked(e1_path, "--e1");
    EntityCollection e2 =
        dirty ? EntityCollection() : LoadProfilesChecked(e2_path, "--e2");
    RequireFileExists(gt_path, "--gt");
    GroundTruth gt =
        LoadGroundTruthCsv(gt_path, e1, dirty ? e1 : e2, dirty);
    std::printf("Loaded %zu + %zu profiles, %zu labelled matches\n",
                e1.size(), e2.size(), gt.size());

    Stopwatch watch;
    BlockingOptions blocking;
    blocking.num_threads = threads;
    config.num_threads = threads;

    if (streaming) {
      StreamingDataset prep =
          dirty ? PrepareStreamingDirty("cli", e1, std::move(gt), blocking)
                : PrepareStreamingCleanClean("cli", e1, e2, std::move(gt),
                                             blocking);
      std::printf(
          "Blocking (%.0f ms): %zu blocks, %llu candidates (not "
          "materialised), recall %.4f, precision %.6f\n",
          watch.ElapsedMillis(), prep.blocks.size(),
          static_cast<unsigned long long>(prep.num_candidates()),
          prep.blocking_quality.recall, prep.blocking_quality.precision);

      StreamingExecutor executor(prep, stream_options);
      // Retained pairs stream straight to disk — buffering them would
      // reintroduce the O(retained) memory the mode exists to avoid.
      std::ofstream out_file;
      size_t rows_written = 0;
      StreamingExecutor::RetainedSink sink;
      if (!out_path.empty()) {
        // Binary mode matches WriteCsvFile, so the streaming CSV stays
        // byte-identical to the batch branch's on every platform.
        out_file.open(out_path, std::ios::binary);
        if (!out_file) {
          throw std::runtime_error("cannot write " + out_path);
        }
        out_file << "left_id,right_id\n";
        sink = [&](uint32_t, const CandidatePair& p, double) {
          out_file << EscapeCsvField(e1[p.left].external_id()) << ','
                   << EscapeCsvField(dirty ? e1[p.right].external_id()
                                           : e2[p.right].external_id())
                   << '\n';
          ++rows_written;
        };
      }
      StreamingResult result = executor.Run(config, sink);
      std::printf(
          "%s + %s on %s, %zu labels (%zu threads, streaming: %zu shards, "
          "arena %zu pairs, %zu sweep%s):\n"
          "  retained  %zu pairs\n  recall    %.4f\n  precision %.4f\n"
          "  F1        %.4f\n  run-time  %.1f ms\n",
          ClassifierKindName(config.classifier),
          PruningKindName(config.pruning),
          config.features.ToString().c_str(), result.training_size, threads,
          result.num_shards_used, result.max_shard_candidates,
          result.sweeps, result.sweeps == 1 ? "" : "s",
          result.metrics.retained, result.metrics.recall,
          result.metrics.precision, result.metrics.f1,
          result.total_seconds * 1e3);
      if (!out_path.empty()) {
        out_file.close();
        if (!out_file) {
          throw std::runtime_error("error writing " + out_path);
        }
        std::printf("Wrote %zu retained pairs to %s\n", rows_written,
                    out_path.c_str());
      }
      return 0;
    }

    PreparedDataset prep =
        dirty ? PrepareDirty("cli", e1, std::move(gt), blocking)
              : PrepareCleanClean("cli", e1, e2, std::move(gt), blocking);
    std::printf(
        "Blocking (%.0f ms): %zu blocks, %zu candidates, recall %.4f, "
        "precision %.6f\n",
        watch.ElapsedMillis(), prep.blocks.size(), prep.pairs.size(),
        prep.blocking_quality.recall, prep.blocking_quality.precision);

    config.keep_retained = !out_path.empty();
    // Multi-threaded feature extraction, then the standard pipeline.
    FeatureExtractor extractor(*prep.index, prep.pairs);
    watch.Restart();
    Matrix features = extractor.Compute(config.features, threads);
    const double feature_seconds = watch.ElapsedSeconds();
    MetaBlockingResult result =
        RunMetaBlockingWithFeatures(prep, config, features, feature_seconds);

    std::printf(
        "%s + %s on %s, %zu labels (%zu threads):\n"
        "  retained  %zu pairs\n  recall    %.4f\n  precision %.4f\n"
        "  F1        %.4f\n  run-time  %.1f ms\n",
        ClassifierKindName(config.classifier), PruningKindName(config.pruning),
        config.features.ToString().c_str(), result.training_size, threads,
        result.metrics.retained, result.metrics.recall,
        result.metrics.precision, result.metrics.f1,
        result.total_seconds * 1e3);

    if (!out_path.empty()) {
      std::vector<CsvRow> rows;
      rows.push_back({"left_id", "right_id"});
      for (uint32_t idx : result.retained_indices) {
        const CandidatePair& p = prep.pairs[idx];
        rows.push_back({e1[p.left].external_id(),
                        dirty ? e1[p.right].external_id()
                              : e2[p.right].external_id()});
      }
      WriteCsvFile(out_path, rows);
      std::printf("Wrote %zu retained pairs to %s\n",
                  result.retained_indices.size(), out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
