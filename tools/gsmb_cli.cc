// gsmb — command-line front end for the library, re-platformed onto the
// gsmb::Engine facade: every subcommand builds ONE declarative
// gsmb::JobSpec (spec file first, flags merged over it) and hands it to the
// engine. The CLI owns no pipeline logic any more — it parses, prints and
// forwards.
//
// Subcommands:
//
//   gsmb run [--config job.json] [flags]
//       Runs the spec on the backend execution.mode selects (batch,
//       streaming, serving, or auto — auto switches to streaming when the
//       arena-bytes model exceeds --memory-budget-mb).
//
//   gsmb explain [--config job.json] [flags]
//       Resolves flags over the spec file and prints the canonical
//       versioned JSON spec to stdout (re-runnable via `run --config`),
//       plus validation and per-backend support diagnostics to stderr.
//
//   gsmb sweep --config sweep.json [flags]
//       Runs a parameter sweep (gsmb/sweep.h): expands the grid, prepares
//       each distinct dataset+blocking ONCE (one preparation per scheme
//       when the sweep has a "scheme" axis), executes every variant in
//       parallel against the cached PreparedInputs. `--csv`/`--json` write
//       machine-readable per-variant results; `--retained-dir` writes one
//       retained CSV per variant. Dataset/pipeline flags merge over the
//       sweep file's base spec, exactly as `run` flags merge over a job
//       spec.
//
//   gsmb migrate spec.json [more.json ...]
//       Upgrades version-1 spec files to the current version in place
//       (canonical re-serialization; a migrated spec runs byte-identical
//       to its version-1 flag-equivalent).
//
//   gsmb serve [--config job.json] [flags] | gsmb serve --snapshot-in S
//       Opens a LIVE serving session from the spec (Engine::OpenSession)
//       or restores a snapshot, then drives it with commands from stdin
//       (see serve/session.h).
//
//   gsmb [flags]           (legacy, == `run`)
//       The PR 1-3 surface: --e1/--e2/--gt/--streaming/... unchanged,
//       including its contradiction checks.
//
// Shared pipeline flags (all subcommands): --pruning bcl|wep|wnp|rwnp|
// blast|cep|cnp|rcnp, --classifier logreg|svc|nb, --features blast|rcnp|
// 2014|all|<list>, --labels N, --seed N, --threads N (0 = all hardware
// threads).
//
// run/explain flags: --e1 a.csv [--e2 b.csv] --gt matches.csv, or
// --dataset NAME [--scale S] for the generated stand-ins; --mode
// batch|streaming|serving|auto; --streaming (== --mode streaming);
// --shards N; --memory-budget-mb M; --out retained.csv.
//
// serve flags: --data a.csv --gt matches.csv [--shards N] [--threads N]
// [--max-block-size N] [--labels N] [--seed N] | --snapshot-in S.
//
// Unknown flags are rejected with a clear error — never silently ignored.
// The ground truth serves both as the labelled sample pool and as the
// evaluation oracle; in a production run you would pass only the labelled
// subset you actually have.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/json.h"
#include "cli_parse.h"
#include "datasets/io.h"
#include "gsmb/digest.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/prepared.h"
#include "gsmb/remote.h"
#include "gsmb/report.h"
#include "gsmb/snapshot.h"
#include "gsmb/status.h"
#include "gsmb/sweep.h"
#include "gsmb/telemetry.h"
#include "schemes/scheme_registry.h"
#include "serve/session.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: gsmb [run] [--config job.json]\n"
      "            --e1 a.csv [--e2 b.csv] --gt matches.csv\n"
      "            | --dataset NAME [--scale S]\n"
      "            [--scheme token|qgram|suffix|sorted-neighborhood|\n"
      "             dynamic-sorted-neighborhood|attribute-clustering|\n"
      "             minhash-lsh]\n"
      "            [--pruning blast] [--classifier logreg]\n"
      "            [--features blast] [--labels 25] [--seed 0]\n"
      "            [--threads 1] [--out retained.csv]\n"
      "            [--mode batch|streaming|serving|auto]\n"
      "            [--streaming [--shards 16]] [--memory-budget-mb M]\n"
      "            [--trace-out trace.json] [--metrics-out metrics.json]\n"
      "            [--report-out report.json]\n"
      "   or: gsmb explain [--config job.json] [--format text|json]\n"
      "            [flags as for run]\n"
      "   or: gsmb sweep --config sweep.json [--csv results.csv]\n"
      "            [--json results.json] [--retained-dir DIR]\n"
      "            [--report-out report.json]\n"
      "            [flags as for run, applied to the sweep's base spec]\n"
      "   or: gsmb sweep --config sweep.json --workers N\n"
      "            [--worker-cmd BIN] [--snapshot-in prepared.snapshot]\n"
      "            (distributed: N local worker processes share ONE\n"
      "             preparation; per-variant results are digest-verified)\n"
      "   or: gsmb prepare [--config job.json] [dataset/blocking flags]\n"
      "            --snapshot-out prepared.snapshot\n"
      "   or: gsmb run|sweep ... --snapshot-in prepared.snapshot\n"
      "   or: gsmb worker [--snapshot-in prepared.snapshot] [--threads N]\n"
      "            (protocol worker over stdin/stdout; spawned by the\n"
      "             sweep coordinator, rarely run by hand)\n"
      "   or: gsmb report diff a_report.json b_report.json\n"
      "   or: gsmb migrate spec.json [more.json ...]\n"
      "   or: gsmb serve [--config job.json] --data a.csv --gt matches.csv\n"
      "            [--shards 16] [--threads 1] [--max-block-size 200]\n"
      "            [--pruning blast] [--classifier logreg]\n"
      "            [--features blast] [--labels 25] [--seed 0]\n"
      "   or: gsmb serve --snapshot-in session.snap [--threads 1]\n");
}

/// Uniform failure path: print the diagnostic, optionally the usage text,
/// and return the exit code (2 for flag/spec problems, 1 at run time).
int Fail(const Status& status, bool with_usage = false) {
  std::fprintf(stderr, "error: %s\n", status.message().c_str());
  if (with_usage) PrintUsage(stderr);
  return with_usage ? 2 : 1;
}

int UsageError(const std::string& message) {
  return Fail(Status::InvalidArgument(message), /*with_usage=*/true);
}

// ---------------------------------------------------------------------------
// run / explain flag parsing
// ---------------------------------------------------------------------------

/// Flags that need post-parse contradiction checks (the legacy rules).
struct RunFlagState {
  bool shards_given = false;
  bool budget_given = false;
};

/// Parses the run/explain flag surface over `spec` (which may have been
/// pre-loaded from --config). Returns Ok or the flag diagnostic.
Status ParseRunFlags(cli::ArgStream& args, JobSpec* spec,
                     RunFlagState* state) {
  while (!args.Done()) {
    const std::string flag = args.Take();

    Result<cli::FlagOutcome> shared = cli::ApplySharedFlag(flag, args, spec);
    if (!shared.ok()) return shared.status();
    if (*shared == cli::FlagOutcome::kHandled) continue;

    if (flag == "--e1") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      spec->dataset.source = DatasetSource::kCsv;
      spec->dataset.e1 = *value;
    } else if (flag == "--e2") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      spec->dataset.source = DatasetSource::kCsv;
      spec->dataset.e2 = *value;
    } else if (flag == "--gt") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      spec->dataset.source = DatasetSource::kCsv;
      spec->dataset.ground_truth = *value;
    } else if (flag == "--dataset") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      // Dirty stand-ins are D10K..D300K; everything else is a Table-1
      // clean-clean pair.
      spec->dataset.source = value->size() > 1 && (*value)[0] == 'D' &&
                                     std::isdigit(
                                         static_cast<unsigned char>((*value)[1]))
                                 ? DatasetSource::kGeneratedDirty
                                 : DatasetSource::kGeneratedCleanClean;
      spec->dataset.name = *value;
    } else if (flag == "--scale") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<double> scale = cli::ParseDouble(flag, *value);
      if (!scale.ok()) return scale.status();
      spec->dataset.scale = *scale;
    } else if (flag == "--scheme") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<std::string> scheme = ParseBlockingScheme(*value);
      if (!scheme.ok()) {
        return Status::InvalidArgument("--scheme: " +
                                       scheme.status().message());
      }
      spec->blocking.scheme = *scheme;
    } else if (flag == "--purge-fraction" || flag == "--filter-ratio") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<double> parsed = cli::ParseDouble(flag, *value);
      if (!parsed.ok()) return parsed.status();
      (flag == "--purge-fraction" ? spec->blocking.purge_size_fraction
                                  : spec->blocking.filter_ratio) = *parsed;
    } else if (flag == "--validity-threshold") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<double> parsed = cli::ParseDouble(flag, *value);
      if (!parsed.ok()) return parsed.status();
      spec->pruning.validity_threshold = *parsed;
    } else if (flag == "--mode") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<ExecutionMode> mode = ParseExecutionMode(*value);
      if (!mode.ok()) {
        return Status::InvalidArgument("--mode: " + mode.status().message());
      }
      spec->execution.mode = *mode;
    } else if (flag == "--streaming") {
      spec->execution.mode = ExecutionMode::kStreaming;
    } else if (flag == "--shards") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<uint64_t> count = cli::ParseCount(flag, *value);
      if (!count.ok()) return count.status();
      spec->execution.shards = static_cast<size_t>(*count);
      state->shards_given = true;
    } else if (flag == "--memory-budget-mb") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      Result<uint64_t> budget = cli::ParseCount(flag, *value);
      if (!budget.ok()) return budget.status();
      if (*budget == 0) {
        return Status::InvalidArgument(
            "--memory-budget-mb 0 is contradictory: a zero-byte arena "
            "cannot hold any candidates (omit the flag for no budget)");
      }
      spec->execution.memory_budget_mb = static_cast<size_t>(*budget);
      state->budget_given = true;
    } else if (flag == "--out") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return value.status();
      spec->output.retained_csv = *value;
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }

  // The legacy contradiction rules, now mode-aware: shard/budget flags
  // shape streaming (or auto-resolved) execution only.
  if (state->shards_given && spec->execution.shards == 0 &&
      spec->execution.mode != ExecutionMode::kServing) {
    return Status::InvalidArgument(
        "--shards 0 is contradictory: streaming needs at least one "
        "candidate-space slice");
  }
  if (spec->execution.mode == ExecutionMode::kBatch &&
      (state->shards_given || state->budget_given)) {
    return Status::InvalidArgument(
        "--shards/--memory-budget-mb only shape --streaming execution; "
        "add --streaming (or --mode streaming|auto) or drop them");
  }
  return Status::Ok();
}

/// True when any token is --help; the caller prints usage and exits 0
/// before flag parsing can reject it as unknown.
bool WantsHelp(int argc, char** argv, int begin) {
  for (int i = begin; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) return true;
  }
  return false;
}

/// Telemetry/report output paths — CLI-level concerns, peeled off before
/// the spec-flag parser (a JobSpec describes the job, not where its trace
/// or provenance report goes).
struct TelemetryFlags {
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;

  bool wanted() const { return !trace_path.empty() || !metrics_path.empty(); }
};

Status ExtractTelemetryFlags(std::vector<std::string>* raw,
                             TelemetryFlags* out) {
  for (size_t i = 0; i < raw->size();) {
    std::string* target = nullptr;
    if ((*raw)[i] == "--trace-out") target = &out->trace_path;
    else if ((*raw)[i] == "--metrics-out") target = &out->metrics_path;
    else if ((*raw)[i] == "--report-out") target = &out->report_path;
    if (target == nullptr) {
      ++i;
      continue;
    }
    if (i + 1 >= raw->size()) {
      return Status::InvalidArgument((*raw)[i] + " needs a file path");
    }
    *target = (*raw)[i + 1];
    raw->erase(raw->begin() + i, raw->begin() + i + 2);
  }
  return Status::Ok();
}

Status WriteTextFile(const std::string& path, const std::string& content,
                     const char* flag) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound(std::string("cannot write ") + flag +
                            " file: " + path);
  }
  out << content;
  out.close();
  if (!out) {
    return Status::Internal(std::string("error writing ") + flag +
                            " file: " + path);
  }
  return Status::Ok();
}

/// Peels `flag` and its value out of `raw` into `out` (last one wins).
Status ExtractValueFlag(std::vector<std::string>* raw, const std::string& flag,
                        std::string* out) {
  for (size_t i = 0; i < raw->size();) {
    if ((*raw)[i] != flag) {
      ++i;
      continue;
    }
    if (i + 1 >= raw->size()) {
      return Status::InvalidArgument(flag + " needs a file path");
    }
    *out = (*raw)[i + 1];
    raw->erase(raw->begin() + i, raw->begin() + i + 2);
  }
  return Status::Ok();
}

Result<JobSpec> SpecFromRunArgs(int argc, char** argv, int begin,
                                RunFlagState* state, TelemetryFlags* telemetry,
                                std::string* snapshot_in = nullptr,
                                std::string* snapshot_out = nullptr) {
  JobSpec spec;
  cli::ArgStream scan(argc, argv, begin);
  std::vector<std::string> raw;
  while (!scan.Done()) raw.push_back(scan.Take());
  Status peeled = ExtractTelemetryFlags(&raw, telemetry);
  if (!peeled.ok()) return peeled;
  if (snapshot_in != nullptr) {
    peeled = ExtractValueFlag(&raw, "--snapshot-in", snapshot_in);
    if (!peeled.ok()) return peeled;
  }
  if (snapshot_out != nullptr) {
    peeled = ExtractValueFlag(&raw, "--snapshot-out", snapshot_out);
    if (!peeled.ok()) return peeled;
  }
  Result<std::vector<std::string>> rest = cli::ExtractConfig(raw, &spec);
  if (!rest.ok()) return rest.status();
  cli::ArgStream args(std::move(*rest));
  Status parsed = ParseRunFlags(args, &spec, state);
  if (!parsed.ok()) return parsed;
  return spec;
}

/// Loads a prepared snapshot, proves it belongs to `spec` (same prepare
/// cache key — the canonical dataset+blocking JSON), and seeds the
/// engine's cache with it, so the following Run/RunSweep reports a cache
/// hit instead of re-preparing. A mismatch is a contradiction error that
/// names the snapshot's digests and both cache keys.
Status AdoptSnapshotChecked(const Engine& engine, const std::string& path,
                            const JobSpec& spec) {
  Result<PreparedSnapshotInfo> info = ReadPreparedSnapshotInfo(path);
  if (!info.ok()) return info.status();
  const std::string spec_key = PrepareCacheKey(spec);
  if (info->cache_key != spec_key) {
    return Status::InvalidArgument(
        "--snapshot-in: snapshot '" + path +
        "' was prepared for a different dataset+blocking than this job: "
        "snapshot dataset_fingerprint " +
        obs::DigestHex(info->dataset_fingerprint) + ", prepared_digest " +
        obs::DigestHex(info->prepared_digest) + "; snapshot cache key " +
        info->cache_key + " vs this job's cache key " + spec_key);
  }
  Result<PreparedHandle> loaded =
      LoadPreparedSnapshot(path, spec.execution.options.num_threads);
  if (!loaded.ok()) return loaded.status();
  return engine.AdoptPrepared(std::move(*loaded));
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

void PrintJobResult(const JobSpec& spec, const JobResult& result) {
  std::printf("Blocking (%.0f ms): %zu blocks, %llu candidates",
              result.blocking_seconds * 1e3, result.num_blocks,
              static_cast<unsigned long long>(result.num_candidates));
  if (result.blocking_quality.num_candidates > 0) {
    std::printf(", recall %.4f, precision %.6f",
                result.blocking_quality.recall,
                result.blocking_quality.precision);
  }
  std::printf("\n");

  // threads == 0 means "all hardware threads", resolved at run time.
  const size_t threads = spec.execution.options.num_threads > 0
                             ? spec.execution.options.num_threads
                             : HardwareThreads();
  std::string shape = std::to_string(threads) + " threads";
  if (result.backend == "streaming") {
    // std::string{} + avoids the operator+(const char*, string&&) overload,
    // which trips a GCC 12 -Wrestrict false positive at -O3 (GCC PR105651).
    shape += std::string{", streaming: "} + std::to_string(result.shards_used) +
             " shards, " + std::to_string(result.sweeps) +
             (result.sweeps == 1 ? " sweep" : " sweeps");
  } else if (result.backend == "serving") {
    shape +=
        std::string{", serving: "} + std::to_string(result.shards_used) +
        " shards";
  } else {
    shape += ", batch";
  }
  std::printf(
      "%s + %s on %s, %zu labels (%s):\n"
      "  retained  %zu pairs\n  recall    %.4f\n  precision %.4f\n"
      "  F1        %.4f\n  run-time  %.1f ms\n",
      ClassifierShortName(spec.classifier),
      PruningKindName(spec.pruning.kind), spec.features.ToString().c_str(),
      result.training_size, shape.c_str(), result.metrics.retained,
      result.metrics.recall, result.metrics.precision, result.metrics.f1,
      result.total_seconds * 1e3);
  if (!spec.output.retained_csv.empty()) {
    std::printf("Wrote %zu retained pairs to %s\n", result.retained_csv_rows,
                spec.output.retained_csv.c_str());
  }
}

int RunMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin)) {
    PrintUsage(stdout);
    return 0;
  }
  RunFlagState state;
  TelemetryFlags telemetry;
  std::string snapshot_in;
  Result<JobSpec> spec =
      SpecFromRunArgs(argc, argv, begin, &state, &telemetry, &snapshot_in);
  if (!spec.ok()) return Fail(spec.status(), /*with_usage=*/true);

  Status valid = spec->Validate();
  if (!valid.ok()) return Fail(valid, /*with_usage=*/true);

  // The sink outlives the run and is uninstalled before export; without
  // --trace-out/--metrics-out nothing is installed and every
  // instrumentation site stays a relaxed load + branch.
  obs::TelemetrySink sink;
  if (telemetry.wanted()) obs::InstallSink(&sink);

  Engine engine;
  if (!snapshot_in.empty()) {
    Status adopted = AdoptSnapshotChecked(engine, snapshot_in, *spec);
    if (!adopted.ok()) {
      if (telemetry.wanted()) obs::InstallSink(nullptr);
      return Fail(adopted);
    }
  }
  Result<JobResult> result = engine.Run(*spec);

  if (telemetry.wanted()) obs::InstallSink(nullptr);
  if (!result.ok()) return Fail(result.status());
  PrintJobResult(*spec, *result);

  if (!telemetry.trace_path.empty()) {
    Status written =
        WriteTextFile(telemetry.trace_path, sink.TraceJson(), "--trace-out");
    if (!written.ok()) return Fail(written);
    std::printf("Wrote Chrome trace to %s\n", telemetry.trace_path.c_str());
  }
  if (!telemetry.metrics_path.empty()) {
    Status written = WriteTextFile(telemetry.metrics_path, sink.MetricsJson(),
                                   "--metrics-out");
    if (!written.ok()) return Fail(written);
    std::printf("Wrote metrics to %s\n", telemetry.metrics_path.c_str());
  }
  if (!telemetry.report_path.empty()) {
    Status written = WriteTextFile(telemetry.report_path,
                                   obs::RunReportJson(*spec, *result),
                                   "--report-out");
    if (!written.ok()) return Fail(written);
    std::printf("Wrote run report to %s\n", telemetry.report_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// explain
// ---------------------------------------------------------------------------

/// Machine-readable explain document: the canonical spec plus the exact
/// validation / Supports() diagnostics the text mode prints to stderr, so
/// CI and the sweep planner can assert backend eligibility without parsing
/// human-shaped text.
int ExplainJson(const JobSpec& spec) {
  json::Object doc;
  // ToJson() is canonical by construction; re-parse it rather than
  // duplicating the schema here.
  Result<json::Value> spec_value = json::Parse(spec.ToJson());
  if (!spec_value.ok()) {
    return Fail(Status::Internal("explain: canonical spec does not re-parse: " +
                                 spec_value.status().message()));
  }
  doc["spec"] = std::move(*spec_value);

  const Status valid = spec.Validate();
  doc["valid"] = json::Value(valid.ok());
  if (!valid.ok()) {
    doc["validation_error"] = json::Value(valid.message());
  }
  doc["execution_mode"] = json::Value(ExecutionModeName(spec.execution.mode));

  json::Array backends;
  json::Array scheme_entries;
  if (valid.ok()) {
    Engine engine;
    for (const std::string& name : engine.BackendNames()) {
      Status supports = engine.FindBackend(name)->Supports(spec);
      json::Object backend;
      backend["name"] = json::Value(name);
      backend["supported"] = json::Value(supports.ok());
      if (!supports.ok()) {
        backend["diagnostic"] = json::Value(supports.message());
      }
      backends.emplace_back(std::move(backend));
    }
    // Every registered blocking scheme, with each backend's Supports()
    // verdict for THIS spec re-pointed at that scheme — the sweep planner
    // reads this to pick scheme-axis values a backend can actually run.
    for (const std::string& scheme_name : schemes::BlockerNames()) {
      const schemes::Blocker* blocker = schemes::FindBlocker(scheme_name);
      json::Object entry;
      entry["name"] = json::Value(scheme_name);
      entry["description"] = json::Value(blocker->description());
      entry["selected"] = json::Value(scheme_name == spec.blocking.scheme);
      JobSpec variant = spec;
      variant.blocking.scheme = scheme_name;
      json::Array verdicts;
      for (const std::string& backend_name : engine.BackendNames()) {
        Status supports = engine.FindBackend(backend_name)->Supports(variant);
        json::Object verdict;
        verdict["name"] = json::Value(backend_name);
        verdict["supported"] = json::Value(supports.ok());
        if (!supports.ok()) {
          verdict["diagnostic"] = json::Value(supports.message());
        }
        verdicts.emplace_back(std::move(verdict));
      }
      entry["backends"] = json::Value(std::move(verdicts));
      scheme_entries.emplace_back(std::move(entry));
    }
  }
  doc["backends"] = json::Value(std::move(backends));
  doc["schemes"] = json::Value(std::move(scheme_entries));

  std::printf("%s\n", json::Dump(json::Value(std::move(doc))).c_str());
  return valid.ok() ? 0 : 2;
}

int ExplainMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin)) {
    PrintUsage(stdout);
    return 0;
  }

  // --format is explain-only; peel it off before the shared run-flag
  // parser (which would reject it as unknown).
  std::vector<std::string> raw;
  std::string format = "text";
  for (int i = begin; i < argc; ++i) raw.emplace_back(argv[i]);
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] == "--format") {
      if (i + 1 >= raw.size()) {
        return UsageError("--format needs a value (text or json)");
      }
      format = raw[i + 1];
      if (format != "text" && format != "json") {
        return UsageError("--format: expected text or json, got '" + format +
                          "'");
      }
      raw.erase(raw.begin() + i, raw.begin() + i + 2);
    } else {
      ++i;
    }
  }

  RunFlagState state;
  JobSpec parsed_spec;
  Result<std::vector<std::string>> rest = cli::ExtractConfig(raw, &parsed_spec);
  if (!rest.ok()) return Fail(rest.status(), /*with_usage=*/true);
  cli::ArgStream args(std::move(*rest));
  Status flags = ParseRunFlags(args, &parsed_spec, &state);
  if (!flags.ok()) return Fail(flags, /*with_usage=*/true);

  if (format == "json") return ExplainJson(parsed_spec);

  // The canonical spec goes to stdout — and nothing else, so
  //   gsmb explain ... > job.json && gsmb run --config job.json
  // replays the exact job. Diagnostics go to stderr.
  std::printf("%s\n", parsed_spec.ToJson().c_str());

  Status valid = parsed_spec.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "spec does not validate: %s\n",
                 valid.message().c_str());
    return 2;
  }
  Engine engine;
  std::fprintf(stderr, "spec is valid; execution.mode = %s\n",
               ExecutionModeName(parsed_spec.execution.mode));
  for (const std::string& name : engine.BackendNames()) {
    Status supports = engine.FindBackend(name)->Supports(parsed_spec);
    std::fprintf(stderr, "  backend %-9s %s\n", name.c_str(),
                 supports.ok() ? "supported" : supports.message().c_str());
  }
  std::fprintf(stderr,
               "registered blocking schemes (backend verdicts for this "
               "spec; * = selected):\n");
  for (const std::string& scheme_name : schemes::BlockerNames()) {
    JobSpec variant = parsed_spec;
    variant.blocking.scheme = scheme_name;
    std::string support;
    for (const std::string& backend : engine.BackendNames()) {
      if (!support.empty()) support += ", ";
      support += backend;
      support +=
          engine.FindBackend(backend)->Supports(variant).ok() ? ":yes" : ":no";
    }
    std::fprintf(stderr, "  scheme %-28s%s %s\n", scheme_name.c_str(),
                 scheme_name == parsed_spec.blocking.scheme ? "*" : " ",
                 support.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// sweep
// ---------------------------------------------------------------------------

/// One results row per variant, machine-readable. `status` is "ok" or the
/// variant's diagnostic.
std::vector<CsvRow> SweepCsvRows(const SweepResult& result) {
  std::vector<CsvRow> rows;
  rows.reserve(result.variants.size() + 1);
  rows.push_back({"label", "scheme", "pruning", "features", "classifier",
                  "labels_per_class", "seed", "backend", "retained", "recall",
                  "precision", "f1", "total_seconds", "status"});
  char buffer[32];
  auto fixed = [&buffer](double v) {
    std::snprintf(buffer, sizeof(buffer), "%.6f", v);
    return std::string(buffer);
  };
  for (const SweepVariant& v : result.variants) {
    const bool ok = v.status.ok();
    rows.push_back({v.label, v.spec.blocking.scheme,
                    PruningShortName(v.spec.pruning.kind),
                    FeatureSetSpecName(v.spec.features),
                    ClassifierShortName(v.spec.classifier),
                    std::to_string(v.spec.training.labels_per_class),
                    std::to_string(v.spec.training.seed),
                    ok ? v.result.backend : "",
                    ok ? std::to_string(v.result.metrics.retained) : "",
                    ok ? fixed(v.result.metrics.recall) : "",
                    ok ? fixed(v.result.metrics.precision) : "",
                    ok ? fixed(v.result.metrics.f1) : "",
                    ok ? fixed(v.result.total_seconds) : "",
                    ok ? "ok" : v.status.message()});
  }
  return rows;
}

Status WriteSweepJson(const std::string& path, const SweepSpec& sweep,
                      const SweepResult& result) {
  json::Object doc;
  json::Object cache;
  cache["hits"] = json::Value(result.cache_hits);
  cache["misses"] = json::Value(result.cache_misses);
  doc["cache"] = json::Value(std::move(cache));
  doc["prepare_seconds"] = json::Value(result.prepare_seconds);
  doc["total_seconds"] = json::Value(result.total_seconds);
  doc["grid_size"] = json::Value(sweep.GridSize());

  json::Array variants;
  for (const SweepVariant& v : result.variants) {
    json::Object row;
    row["label"] = json::Value(v.label);
    row["scheme"] = json::Value(v.spec.blocking.scheme);
    row["pruning"] = json::Value(PruningShortName(v.spec.pruning.kind));
    row["features"] = json::Value(FeatureSetSpecName(v.spec.features));
    row["classifier"] = json::Value(ClassifierShortName(v.spec.classifier));
    row["labels_per_class"] =
        json::Value(v.spec.training.labels_per_class);
    row["seed"] = json::Value(v.spec.training.seed);
    if (v.status.ok()) {
      row["backend"] = json::Value(v.result.backend);
      row["retained"] = json::Value(v.result.metrics.retained);
      row["recall"] = json::Value(v.result.metrics.recall);
      row["precision"] = json::Value(v.result.metrics.precision);
      row["f1"] = json::Value(v.result.metrics.f1);
      row["total_seconds"] = json::Value(v.result.total_seconds);
    } else {
      row["error"] = json::Value(v.status.ToString());
    }
    variants.emplace_back(std::move(row));
  }
  doc["variants"] = json::Value(std::move(variants));

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound("cannot write --json file: " + path);
  }
  out << json::Dump(json::Value(std::move(doc))) << "\n";
  out.close();
  if (!out) {
    return Status::Internal("error writing --json file: " + path);
  }
  return Status::Ok();
}

int SweepMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin)) {
    PrintUsage(stdout);
    return 0;
  }

  // Peel off the sweep-only flags; the rest merge over the base spec.
  std::vector<std::string> raw;
  for (int i = begin; i < argc; ++i) raw.emplace_back(argv[i]);
  std::string config_path, csv_path, json_path, retained_dir, report_path;
  std::string snapshot_in, workers_value, worker_cmd;
  TelemetryFlags telemetry;
  auto take_value = [&raw](size_t i, const char* flag,
                           std::string* out) -> Result<size_t> {
    if (i + 1 >= raw.size()) {
      return Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    *out = raw[i + 1];
    return i;  // caller erases [i, i+2)
  };
  for (size_t i = 0; i < raw.size();) {
    std::string* target = nullptr;
    if (raw[i] == "--config") target = &config_path;
    else if (raw[i] == "--csv") target = &csv_path;
    else if (raw[i] == "--json") target = &json_path;
    else if (raw[i] == "--retained-dir") target = &retained_dir;
    else if (raw[i] == "--report-out") target = &report_path;
    else if (raw[i] == "--snapshot-in") target = &snapshot_in;
    else if (raw[i] == "--workers") target = &workers_value;
    else if (raw[i] == "--worker-cmd") target = &worker_cmd;
    else if (raw[i] == "--trace-out") target = &telemetry.trace_path;
    else if (raw[i] == "--metrics-out") target = &telemetry.metrics_path;
    if (target == nullptr) {
      ++i;
      continue;
    }
    Result<size_t> taken = take_value(i, raw[i].c_str(), target);
    if (!taken.ok()) return Fail(taken.status(), /*with_usage=*/true);
    raw.erase(raw.begin() + i, raw.begin() + i + 2);
  }
  if (config_path.empty()) {
    return UsageError("sweep needs --config sweep.json (the grid lives in "
                      "the sweep spec, not in flags)");
  }

  Result<SweepSpec> sweep = SweepSpec::FromFile(config_path);
  if (!sweep.ok()) return Fail(sweep.status(), /*with_usage=*/true);
  if (!retained_dir.empty()) sweep->retained_dir = retained_dir;

  // Remaining flags (dataset paths, --threads, ...) merge over the base
  // spec, exactly like `run` flags merge over a job spec file.
  RunFlagState state;
  cli::ArgStream args(std::move(raw));
  Status flags = ParseRunFlags(args, &sweep->base, &state);
  if (!flags.ok()) return Fail(flags, /*with_usage=*/true);

  Status valid = sweep->Validate();
  if (!valid.ok()) return Fail(valid, /*with_usage=*/true);

  size_t workers = 0;
  if (!workers_value.empty()) {
    Result<uint64_t> count = cli::ParseCount("--workers", workers_value);
    if (!count.ok()) return Fail(count.status(), /*with_usage=*/true);
    if (*count == 0) {
      return UsageError(
          "--workers 0 is contradictory: a distributed sweep needs at "
          "least one worker process (omit the flag to run in-process)");
    }
    workers = static_cast<size_t>(*count);
  }
  if (workers == 0 && !worker_cmd.empty()) {
    return UsageError(
        "--worker-cmd names the worker binary of a distributed sweep; "
        "it needs --workers N");
  }

  // Coordinator-side telemetry (prepare span, pipeline counters); the
  // distributed path additionally folds per-worker snapshots into the
  // SweepResult's own telemetry field.
  obs::TelemetrySink sink;
  if (telemetry.wanted()) obs::InstallSink(&sink);
  Result<SweepResult> result = [&]() -> Result<SweepResult> {
    if (workers > 0) {
      RemoteOptions options;
      options.num_workers = workers;
      options.worker_command = worker_cmd;  // empty = this binary
      options.snapshot_path = snapshot_in;
      return RunSweepRemote(*sweep, options);
    }
    Engine engine;
    if (!snapshot_in.empty()) {
      Status adopted = AdoptSnapshotChecked(engine, snapshot_in, sweep->base);
      if (!adopted.ok()) return adopted;
    }
    return engine.RunSweep(*sweep);
  }();
  if (telemetry.wanted()) obs::InstallSink(nullptr);
  if (!result.ok()) return Fail(result.status());

  if (!telemetry.trace_path.empty()) {
    Status written =
        WriteTextFile(telemetry.trace_path, sink.TraceJson(), "--trace-out");
    if (!written.ok()) return Fail(written);
    std::printf("wrote Chrome trace to %s\n", telemetry.trace_path.c_str());
  }
  if (!telemetry.metrics_path.empty()) {
    Status written = WriteTextFile(telemetry.metrics_path, sink.MetricsJson(),
                                   "--metrics-out");
    if (!written.ok()) return Fail(written);
    std::printf("wrote metrics to %s\n", telemetry.metrics_path.c_str());
  }

  // One preparation per distinct dataset+blocking; the scheme axis is the
  // only axis that multiplies this count.
  const size_t preparations =
      std::max<size_t>(1, sweep->axes.schemes.empty()
                              ? 1
                              : sweep->axes.schemes.size());
  std::printf(
      "prepared blocking %zu time%s in %.1f ms (cache: %zu miss%s, "
      "%zu hit%s); %zu variant%s in %.1f ms\n",
      preparations, preparations == 1 ? "" : "s",
      result->prepare_seconds * 1e3, result->cache_misses,
      result->cache_misses == 1 ? "" : "es", result->cache_hits,
      result->cache_hits == 1 ? "" : "s", result->variants.size(),
      result->variants.size() == 1 ? "" : "s", result->total_seconds * 1e3);

  TablePrinter table({"variant", "backend", "retained", "recall", "precision",
                      "F1", "RT ms"});
  size_t failures = 0;
  for (const SweepVariant& v : result->variants) {
    if (!v.status.ok()) {
      ++failures;
      table.AddRow({v.label, "FAILED: " + v.status.message(), "", "", "", "",
                    ""});
      continue;
    }
    table.AddRow({v.label, v.result.backend,
                  std::to_string(v.result.metrics.retained),
                  TablePrinter::Fixed(v.result.metrics.recall, 4),
                  TablePrinter::Fixed(v.result.metrics.precision, 4),
                  TablePrinter::Fixed(v.result.metrics.f1, 4),
                  TablePrinter::Fixed(v.result.total_seconds * 1e3, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  // Result files come after the sweep ran; a bad output path must still
  // report cleanly (exit 1), never abort a finished sweep.
  if (!csv_path.empty()) {
    try {
      WriteCsvFile(csv_path, SweepCsvRows(*result));
    } catch (const std::exception& e) {
      return Fail(Status::NotFound(std::string("--csv: ") + e.what()));
    }
    std::printf("wrote %zu result rows to %s\n", result->variants.size(),
                csv_path.c_str());
  }
  if (!json_path.empty()) {
    Status written = WriteSweepJson(json_path, *sweep, *result);
    if (!written.ok()) return Fail(written);
    std::printf("wrote sweep JSON to %s\n", json_path.c_str());
  }
  if (!report_path.empty()) {
    Status written = WriteTextFile(
        report_path, obs::SweepReportJson(*sweep, *result), "--report-out");
    if (!written.ok()) return Fail(written);
    std::printf("wrote sweep report to %s\n", report_path.c_str());
  }
  if (!sweep->retained_dir.empty()) {
    std::printf("retained CSVs under %s/\n", sweep->retained_dir.c_str());
  }
  if (failures > 0) {
    std::fprintf(stderr, "error: %zu of %zu variants failed\n", failures,
                 result->variants.size());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// prepare / worker (the distributed tier's CLI surface)
// ---------------------------------------------------------------------------

/// `gsmb prepare ... --snapshot-out F` — run the preparation (dataset +
/// blocking) once and persist it as a prepared snapshot that `run`,
/// `sweep` and distributed workers load instead of re-preparing.
int PrepareMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin)) {
    PrintUsage(stdout);
    return 0;
  }
  RunFlagState state;
  TelemetryFlags telemetry;
  std::string snapshot_in, snapshot_out;
  Result<JobSpec> spec = SpecFromRunArgs(argc, argv, begin, &state, &telemetry,
                                         &snapshot_in, &snapshot_out);
  if (!spec.ok()) return Fail(spec.status(), /*with_usage=*/true);
  if (!snapshot_in.empty()) {
    return UsageError(
        "--snapshot-in contradicts prepare, which CREATES a snapshot; "
        "use --snapshot-out");
  }
  if (snapshot_out.empty()) {
    return UsageError("prepare needs --snapshot-out FILE");
  }
  Status valid = spec->Validate();
  if (!valid.ok()) return Fail(valid, /*with_usage=*/true);

  Engine engine;
  Result<PreparedHandle> prepared = engine.Prepare(*spec);
  if (!prepared.ok()) return Fail(prepared.status());
  Status saved = SavePreparedSnapshot(**prepared, snapshot_out);
  if (!saved.ok()) return Fail(saved);

  Result<PreparedSnapshotInfo> info = ReadPreparedSnapshotInfo(snapshot_out);
  if (!info.ok()) return Fail(info.status());
  std::printf(
      "prepared in %.1f ms; wrote %llu-byte snapshot to %s\n"
      "  dataset_fingerprint %s\n  prepared_digest     %s\n",
      (*prepared)->prepare_seconds * 1e3,
      static_cast<unsigned long long>(info->file_bytes), snapshot_out.c_str(),
      obs::DigestHex(info->dataset_fingerprint).c_str(),
      obs::DigestHex(info->prepared_digest).c_str());
  return 0;
}

/// `gsmb worker` — the coordinator-spawned protocol worker. stdout is the
/// protocol channel, so every diagnostic here goes to stderr and the
/// usage text is never printed to stdout.
int WorkerMain(int argc, char** argv, int begin) {
  WorkerOptions options;
  cli::ArgStream args(argc, argv, begin);
  while (!args.Done()) {
    const std::string flag = args.Take();
    if (flag == "--snapshot-in") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status());
      options.snapshot_path = *value;
    } else if (flag == "--threads") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status());
      Result<uint64_t> count = cli::ParseCount(flag, *value);
      if (!count.ok()) return Fail(count.status());
      options.num_threads = static_cast<size_t>(*count);
    } else {
      return Fail(Status::InvalidArgument("unknown worker flag " + flag));
    }
  }
  return RunWorker(options);
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read report file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading report file: " + path);
  }
  return buffer.str();
}

/// `gsmb report diff A B` — classify drift between two run (or sweep)
/// reports. Exit 0 when the runs computed the same thing (identical or
/// perf-only drift), 1 on semantic drift, 2 on usage/parse problems.
int ReportMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin)) {
    PrintUsage(stdout);
    return 0;
  }
  if (begin >= argc) {
    return UsageError("report needs a subcommand: report diff A B");
  }
  const std::string verb = argv[begin];
  if (verb != "diff") {
    return UsageError("unknown report subcommand '" + verb +
                      "' (expected: diff)");
  }
  if (begin + 2 >= argc || argc - begin != 3) {
    return UsageError("report diff needs exactly two report files");
  }

  Result<std::string> a = ReadTextFile(argv[begin + 1]);
  if (!a.ok()) return Fail(a.status());
  Result<std::string> b = ReadTextFile(argv[begin + 2]);
  if (!b.ok()) return Fail(b.status());

  Result<obs::ReportDiff> diff = obs::DiffReports(*a, *b);
  if (!diff.ok()) {
    // Malformed/mismatched documents are a usage-class failure (2), kept
    // distinct from "parsed fine, semantically drifted" (1).
    std::fprintf(stderr, "error: %s\n", diff.status().message().c_str());
    return 2;
  }

  std::printf("drift: %s\n", obs::DriftKindName(diff->kind));
  for (const std::string& line : diff->semantic) {
    std::printf("  semantic  %s\n", line.c_str());
  }
  for (const std::string& line : diff->perf) {
    std::printf("  perf      %s\n", line.c_str());
  }
  if (diff->kind == obs::DriftKind::kNone) {
    std::printf("reports agree on all fields\n");
  } else if (diff->kind == obs::DriftKind::kPerfOnly) {
    std::printf("reports agree on all semantic fields\n");
  }
  return diff->kind == obs::DriftKind::kSemantic ? 1 : 0;
}

// ---------------------------------------------------------------------------
// migrate
// ---------------------------------------------------------------------------

int MigrateMain(int argc, char** argv, int begin) {
  if (WantsHelp(argc, argv, begin) || begin >= argc) {
    if (begin >= argc) {
      return UsageError("migrate needs at least one spec file");
    }
    PrintUsage(stdout);
    return 0;
  }
  for (int i = begin; i < argc; ++i) {
    const std::string path = argv[i];
    if (path.rfind("--", 0) == 0) {
      return UsageError("unknown migrate flag " + path);
    }

    // Read the on-disk version first so the report can say what changed;
    // FromFile then applies the full versioned schema (a version-1 file
    // must not use version-2 keys, unknown keys still reject, ...).
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Fail(Status::NotFound("cannot open spec file: " + path));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    uint64_t old_version = 0;
    {
      Result<json::Value> parsed = json::Parse(buffer.str());
      if (parsed.ok() && parsed->is_object()) {
        const json::Value* v = parsed->AsObject().Find("version");
        if (v != nullptr && v->is_u64()) old_version = v->AsU64();
      }
    }

    Result<JobSpec> spec = JobSpec::FromJson(buffer.str());
    if (!spec.ok()) {
      return Fail(Status(spec.status().code(),
                         path + ": " + spec.status().message()));
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(Status::NotFound("cannot rewrite spec file: " + path));
    }
    out << spec->ToJson() << "\n";
    out.close();
    if (!out) {
      return Fail(Status::Internal("error writing spec file: " + path));
    }
    if (old_version == kJobSpecVersion) {
      std::printf("%s: already version %llu (rewritten canonically)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(kJobSpecVersion));
    } else {
      std::printf("%s: migrated version %llu -> %llu\n", path.c_str(),
                  static_cast<unsigned long long>(old_version),
                  static_cast<unsigned long long>(kJobSpecVersion));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve mode (REPL on a live session)
// ---------------------------------------------------------------------------

/// Loads a profile CSV with clear diagnostics for the REPL commands.
EntityCollection LoadProfilesChecked(const std::string& path,
                                     const std::string& role) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error(role + " dataset path does not exist: " + path);
  }
  EntityCollection collection = LoadCollectionCsv(path, role);
  if (collection.empty()) {
    throw std::runtime_error(role + " dataset " + path +
                             " parses to zero profiles");
  }
  return collection;
}

void PrintServeHelp() {
  std::printf(
      "commands:\n"
      "  ingest <csv>     add profiles from id,attribute,value CSV\n"
      "  refresh          re-block + re-prune dirty shards\n"
      "  query <id>       candidates for the resident profile <id>\n"
      "  queryfile <csv>  query every profile of the CSV (top 3 each)\n"
      "  retained <csv>   write the retained pairs as CSV\n"
      "  save <path>      write a session snapshot\n"
      "  stats            session counters + latency percentiles\n"
      "  help             this text\n"
      "  quit             exit\n");
}

void PrintStats(const MetaBlockingSession& session,
                const obs::TelemetrySink* sink = nullptr) {
  const SessionStats stats = session.Stats();
  std::printf(
      "profiles %zu | shards %zu (%zu dirty) | blocks %zu | candidates %zu "
      "| retained %zu\n",
      stats.num_profiles, stats.num_shards, stats.dirty_shards,
      stats.num_blocks, stats.num_candidates, stats.num_retained);
  if (sink == nullptr) return;
  // Latency lines from the registry's histograms — one per session verb
  // that has been exercised since the REPL started.
  const obs::MetricsSnapshot metrics = sink->SnapshotMetrics();
  for (const char* name : {"serve.query.latency_us", "serve.refresh.latency_us",
                           "serve.ingest.latency_us"}) {
    auto it = metrics.histograms.find(name);
    if (it == metrics.histograms.end() || it->second.count == 0) continue;
    const obs::HistogramData& h = it->second;
    std::printf(
        "%-24s n %llu | p50 %.0f us | p95 %.0f us | p99 %.0f us | max %.0f "
        "us\n",
        name, static_cast<unsigned long long>(h.count), h.Percentile(0.50),
        h.Percentile(0.95), h.Percentile(0.99), h.max);
  }
}

void PrintQuery(const MetaBlockingSession& session, const EntityProfile& probe,
                size_t top_k,
                std::optional<EntityId> exclude = std::nullopt) {
  Stopwatch watch;
  const std::vector<QueryMatch> matches =
      session.QueryCandidates(probe, top_k, exclude);
  const double ms = watch.ElapsedMillis();
  if (matches.empty()) {
    std::printf("  no candidates above threshold (%.2f ms)\n", ms);
    return;
  }
  for (size_t i = 0; i < matches.size(); ++i) {
    std::printf("  %zu. %s  p=%.4f\n", i + 1,
                session.profiles()[matches[i].id].external_id().c_str(),
                matches[i].probability);
  }
  std::printf("  (%zu candidates, %.2f ms)\n", matches.size(), ms);
}

int RunServeLoop(MetaBlockingSession& session) {
  // Registry behind the `stats` command: the session records its
  // ingest/refresh/query latency histograms while this sink is installed.
  obs::TelemetrySink sink;
  obs::InstallSink(&sink);
  PrintStats(session);
  std::printf("ready — type 'help' for commands\n");

  // external id -> resident id, extended lazily as ingests grow the
  // collection (a linear FindByExternalId scan per query would not keep up
  // with a production-sized resident set).
  std::unordered_map<std::string, EntityId> id_index;
  size_t indexed = 0;
  auto resident_id =
      [&](const std::string& external_id) -> std::optional<EntityId> {
    const EntityCollection& profiles = session.profiles();
    for (; indexed < profiles.size(); ++indexed) {
      id_index.emplace(profiles[static_cast<EntityId>(indexed)].external_id(),
                       static_cast<EntityId>(indexed));
    }
    auto it = id_index.find(external_id);
    if (it == id_index.end()) return std::nullopt;
    return it->second;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream parts(line);
    std::string command;
    parts >> command;
    if (command.empty()) continue;
    try {
      if (command == "quit" || command == "exit") {
        break;
      } else if (command == "help") {
        PrintServeHelp();
      } else if (command == "stats") {
        PrintStats(session, &sink);
      } else if (command == "refresh") {
        Stopwatch watch;
        const size_t refreshed = session.Refresh();
        std::printf("refreshed %zu shard%s in %.1f ms\n", refreshed,
                    refreshed == 1 ? "" : "s", watch.ElapsedMillis());
      } else if (command == "ingest") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("ingest needs a path");
        const EntityCollection batch = LoadProfilesChecked(path, "ingest");
        Stopwatch watch;
        session.AddProfiles(batch.profiles());
        std::printf(
            "ingested %zu profiles in %.1f ms; %zu shards now dirty "
            "(run 'refresh')\n",
            batch.size(), watch.ElapsedMillis(), session.DirtyShardCount());
      } else if (command == "query") {
        std::string external_id;
        parts >> external_id;
        if (external_id.empty()) {
          throw std::runtime_error("query needs an external id");
        }
        const std::optional<EntityId> self = resident_id(external_id);
        if (!self.has_value()) {
          throw std::runtime_error("no resident profile with id " +
                                   external_id);
        }
        // The probe is resident: exclude it from its own candidates.
        PrintQuery(session, session.profiles()[*self], 10, *self);
      } else if (command == "queryfile") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("queryfile needs a path");
        const EntityCollection probes = LoadProfilesChecked(path, "query");
        for (const EntityProfile& probe : probes.profiles()) {
          std::printf("%s:\n", probe.external_id().c_str());
          // A probe that is already resident (same external id) must not
          // match itself.
          PrintQuery(session, probe, 3, resident_id(probe.external_id()));
        }
      } else if (command == "retained") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("retained needs a path");
        const std::vector<CandidatePair> retained = session.RetainedPairs();
        std::vector<CsvRow> rows;
        rows.reserve(retained.size() + 1);
        rows.push_back({"left_id", "right_id"});
        for (const CandidatePair& p : retained) {
          rows.push_back({session.profiles()[p.left].external_id(),
                          session.profiles()[p.right].external_id()});
        }
        WriteCsvFile(path, rows);
        std::printf("wrote %zu retained pairs to %s\n", retained.size(),
                    path.c_str());
      } else if (command == "save") {
        std::string path;
        parts >> path;
        if (path.empty()) throw std::runtime_error("save needs a path");
        session.Save(path);
        std::printf("saved session to %s\n", path.c_str());
      } else {
        std::printf("unknown command '%s' — type 'help'\n", command.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  obs::InstallSink(nullptr);
  return 0;
}

int ServeMain(int argc, char** argv) {
  if (WantsHelp(argc, argv, 2)) {
    PrintUsage(stdout);
    return 0;
  }
  JobSpec spec;
  // serve-mode spec defaults: the session tokenizes its own ingests and
  // cannot apply Block Filtering; the legacy absolute purge cap stays 200.
  spec.execution.mode = ExecutionMode::kServing;
  spec.blocking.filter_ratio = 1.0;
  spec.execution.serving_max_block_size = 200;

  std::string snapshot_path;
  bool threads_given = false;
  // A restored snapshot carries its own options and model; every flag that
  // would contradict them is rejected rather than silently ignored.
  std::string bootstrap_flag;

  cli::ArgStream scan(argc, argv, 2);
  std::vector<std::string> raw;
  while (!scan.Done()) raw.push_back(scan.Take());
  // --config merges over the serve defaults seeded above: a spec file that
  // does not mention filter_ratio or the purge cap keeps them.
  bool config_loaded = false;
  Result<std::vector<std::string>> rest =
      cli::ExtractConfig(raw, &spec, &config_loaded);
  if (!rest.ok()) return Fail(rest.status(), /*with_usage=*/true);
  cli::ArgStream args(std::move(*rest));

  while (!args.Done()) {
    const std::string flag = args.Take();

    // Shared pipeline flags; all except --threads configure a NEW session.
    if (flag == "--pruning" || flag == "--classifier" ||
        flag == "--features" || flag == "--labels" || flag == "--seed" ||
        flag == "--threads") {
      if (flag != "--threads") {
        bootstrap_flag = flag;
      } else {
        threads_given = true;
      }
      Result<cli::FlagOutcome> shared =
          cli::ApplySharedFlag(flag, args, &spec);
      if (!shared.ok()) return Fail(shared.status(), /*with_usage=*/true);
      continue;
    }

    if (flag == "--data") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status(), /*with_usage=*/true);
      spec.dataset.source = DatasetSource::kCsv;
      spec.dataset.e1 = *value;
    } else if (flag == "--gt") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status(), /*with_usage=*/true);
      spec.dataset.ground_truth = *value;
    } else if (flag == "--snapshot-in") {
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status(), /*with_usage=*/true);
      snapshot_path = *value;
    } else if (flag == "--shards") {
      bootstrap_flag = flag;
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status(), /*with_usage=*/true);
      Result<uint64_t> count = cli::ParseCount(flag, *value);
      if (!count.ok()) return Fail(count.status(), /*with_usage=*/true);
      spec.execution.shards = static_cast<size_t>(*count);
    } else if (flag == "--max-block-size") {
      bootstrap_flag = flag;
      Result<std::string> value = args.Value(flag);
      if (!value.ok()) return Fail(value.status(), /*with_usage=*/true);
      Result<uint64_t> count = cli::ParseCount(flag, *value);
      if (!count.ok()) return Fail(count.status(), /*with_usage=*/true);
      spec.execution.serving_max_block_size = static_cast<size_t>(*count);
    } else if (flag == "--streaming" || flag == "--memory-budget-mb") {
      return UsageError(
          flag +
          " drives the one-shot batch pipeline and contradicts serve "
          "mode, which is incremental by construction — drop the flag "
          "or run without 'serve'");
    } else if (flag == "--help") {
      PrintUsage(stdout);
      return 0;
    } else {
      return UsageError("unknown serve flag " + flag);
    }
  }

  if (spec.execution.shards == 0) {
    return UsageError(
        "--shards 0 is contradictory: a session needs at least one shard");
  }
  // Generated dataset sources (from --config) carry their own data; only a
  // CSV-source spec needs the --data/--gt paths.
  if (snapshot_path.empty() && spec.dataset.source == DatasetSource::kCsv &&
      (spec.dataset.e1.empty() || spec.dataset.ground_truth.empty())) {
    return UsageError("serve needs --data and --gt (or --snapshot-in)");
  }
  if (!snapshot_path.empty()) {
    if (!spec.dataset.e1.empty() || !spec.dataset.ground_truth.empty()) {
      return UsageError(
          "--snapshot-in restores a full session; it cannot be combined "
          "with --data/--gt");
    }
    if (config_loaded) {
      return UsageError(
          "--config configures a new session and is ignored by "
          "--snapshot-in (the snapshot's options govern)");
    }
    if (!bootstrap_flag.empty()) {
      return UsageError(
          bootstrap_flag +
          " configures a new session and is ignored by --snapshot-in "
          "(the snapshot's options govern); only --threads applies");
    }
  }

  try {
    if (!snapshot_path.empty()) {
      if (!std::filesystem::exists(snapshot_path)) {
        return Fail(Status::NotFound("--snapshot-in path does not exist: " +
                                     snapshot_path));
      }
      Stopwatch watch;
      MetaBlockingSession session = MetaBlockingSession::Load(snapshot_path);
      // The snapshot's options govern the session's semantics; the thread
      // count is purely an execution knob, so the flag wins when given
      // (0 = all hardware threads, resolved here).
      if (threads_given) {
        session.set_num_threads(spec.execution.options.num_threads > 0
                                    ? spec.execution.options.num_threads
                                    : HardwareThreads());
      }
      std::printf("restored session from %s in %.1f ms\n",
                  snapshot_path.c_str(), watch.ElapsedMillis());
      return RunServeLoop(session);
    }

    Engine engine;
    Stopwatch watch;
    Result<MetaBlockingSession> session = engine.OpenSession(spec);
    if (!session.ok()) return Fail(session.status());
    std::printf(
        "bootstrapped %zu-shard session (%s on %s) in %.1f ms\n",
        session->options().num_shards, ClassifierShortName(spec.classifier),
        spec.features.ToString().c_str(), watch.ElapsedMillis());
    return RunServeLoop(*session);
  } catch (const std::exception& e) {
    return Fail(Status::Internal(e.what()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return ServeMain(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "explain") == 0) {
    return ExplainMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return SweepMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "prepare") == 0) {
    return PrepareMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "worker") == 0) {
    return WorkerMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "report") == 0) {
    return ReportMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "migrate") == 0) {
    return MigrateMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
    return RunMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  // Legacy surface: bare flags behave exactly like `run`.
  return RunMain(argc, argv, 1);
}
