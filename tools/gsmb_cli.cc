// gsmb — command-line front end for the library.
//
// Runs the full (Generalized) Supervised Meta-blocking pipeline on CSV
// data and prints the retained pairs or their evaluation.
//
// Usage:
//   gsmb --e1 a.csv [--e2 b.csv] --gt matches.csv
//        [--pruning blast|rcnp|bcl|wep|wnp|rwnp|cep|cnp]
//        [--classifier logreg|svc|nb]
//        [--features blast|rcnp|2014|all]
//        [--labels N]            balanced labelled pairs per class (25)
//        [--seed N]              training-sample seed (0)
//        [--threads N]           worker threads for blocking, features,
//                                classification and pruning (1; 0 = all
//                                hardware threads). Results are identical
//                                for any thread count.
//        [--out retained.csv]    write retained pairs as CSV
//
// Omitting --e2 switches to Dirty ER (deduplication of --e1).
// The ground truth serves both as the labelled sample pool and as the
// evaluation oracle; in a production run you would pass only the labelled
// subset you actually have.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/pipeline.h"
#include "datasets/io.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

void PrintUsage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: gsmb --e1 a.csv [--e2 b.csv] --gt matches.csv\n"
               "            [--pruning blast] [--classifier logreg]\n"
               "            [--features blast] [--labels 25] [--seed 0]\n"
               "            [--threads 1] [--out retained.csv]\n");
}

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  PrintUsage(stderr);
  std::exit(2);
}

PruningKind ParsePruning(const std::string& s) {
  static const std::map<std::string, PruningKind> kMap = {
      {"bcl", PruningKind::kBCl},   {"wep", PruningKind::kWep},
      {"wnp", PruningKind::kWnp},   {"rwnp", PruningKind::kRwnp},
      {"blast", PruningKind::kBlast}, {"cep", PruningKind::kCep},
      {"cnp", PruningKind::kCnp},   {"rcnp", PruningKind::kRcnp}};
  auto it = kMap.find(s);
  if (it == kMap.end()) Usage("unknown --pruning value");
  return it->second;
}

ClassifierKind ParseClassifier(const std::string& s) {
  if (s == "logreg") return ClassifierKind::kLogisticRegression;
  if (s == "svc") return ClassifierKind::kLinearSvc;
  if (s == "nb") return ClassifierKind::kGaussianNaiveBayes;
  Usage("unknown --classifier value");
}

FeatureSet ParseFeatures(const std::string& s) {
  if (s == "blast") return FeatureSet::BlastOptimal();
  if (s == "rcnp") return FeatureSet::RcnpOptimal();
  if (s == "2014") return FeatureSet::Paper2014();
  if (s == "all") return FeatureSet::All();
  Usage("unknown --features value");
}

uint64_t ParseNumber(const char* flag, const std::string& s) {
  // std::stoull alone would accept "-1" (it wraps modulo 2^64), so require
  // every character to be a digit.
  const bool all_digits =
      !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
  if (all_digits) {
    try {
      return std::stoull(s);
    } catch (const std::exception&) {
      // out of range; fall through to the usage error
    }
  }
  Usage((std::string(flag) + " expects a non-negative integer, got '" + s +
         "'").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string e1_path, e2_path, gt_path, out_path;
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 25;
  size_t threads = 1;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) Usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--e1") == 0) {
      e1_path = need_value("--e1");
    } else if (std::strcmp(argv[i], "--e2") == 0) {
      e2_path = need_value("--e2");
    } else if (std::strcmp(argv[i], "--gt") == 0) {
      gt_path = need_value("--gt");
    } else if (std::strcmp(argv[i], "--pruning") == 0) {
      config.pruning = ParsePruning(need_value("--pruning"));
    } else if (std::strcmp(argv[i], "--classifier") == 0) {
      config.classifier = ParseClassifier(need_value("--classifier"));
    } else if (std::strcmp(argv[i], "--features") == 0) {
      config.features = ParseFeatures(need_value("--features"));
    } else if (std::strcmp(argv[i], "--labels") == 0) {
      config.train_per_class = static_cast<size_t>(
          ParseNumber("--labels", need_value("--labels")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = ParseNumber("--seed", need_value("--seed"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<size_t>(
          ParseNumber("--threads", need_value("--threads")));
      if (threads == 0) threads = HardwareThreads();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value("--out");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    } else {
      Usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (e1_path.empty() || gt_path.empty()) Usage("--e1 and --gt are required");

  try {
    const bool dirty = e2_path.empty();
    EntityCollection e1 = LoadCollectionCsv(e1_path, "E1");
    EntityCollection e2 =
        dirty ? EntityCollection() : LoadCollectionCsv(e2_path, "E2");
    GroundTruth gt =
        LoadGroundTruthCsv(gt_path, e1, dirty ? e1 : e2, dirty);
    std::printf("Loaded %zu + %zu profiles, %zu labelled matches\n",
                e1.size(), e2.size(), gt.size());

    Stopwatch watch;
    BlockingOptions blocking;
    blocking.num_threads = threads;
    config.num_threads = threads;
    PreparedDataset prep =
        dirty ? PrepareDirty("cli", e1, std::move(gt), blocking)
              : PrepareCleanClean("cli", e1, e2, std::move(gt), blocking);
    std::printf(
        "Blocking (%.0f ms): %zu blocks, %zu candidates, recall %.4f, "
        "precision %.6f\n",
        watch.ElapsedMillis(), prep.blocks.size(), prep.pairs.size(),
        prep.blocking_quality.recall, prep.blocking_quality.precision);

    config.keep_retained = !out_path.empty();
    // Multi-threaded feature extraction, then the standard pipeline.
    FeatureExtractor extractor(*prep.index, prep.pairs);
    watch.Restart();
    Matrix features = extractor.Compute(config.features, threads);
    const double feature_seconds = watch.ElapsedSeconds();
    MetaBlockingResult result =
        RunMetaBlockingWithFeatures(prep, config, features, feature_seconds);

    std::printf(
        "%s + %s on %s, %zu labels (%zu threads):\n"
        "  retained  %zu pairs\n  recall    %.4f\n  precision %.4f\n"
        "  F1        %.4f\n  run-time  %.1f ms\n",
        ClassifierKindName(config.classifier), PruningKindName(config.pruning),
        config.features.ToString().c_str(), result.training_size, threads,
        result.metrics.retained, result.metrics.recall,
        result.metrics.precision, result.metrics.f1,
        result.total_seconds * 1e3);

    if (!out_path.empty()) {
      std::vector<CsvRow> rows;
      rows.push_back({"left_id", "right_id"});
      for (uint32_t idx : result.retained_indices) {
        const CandidatePair& p = prep.pairs[idx];
        rows.push_back({e1[p.left].external_id(),
                        dirty ? e1[p.right].external_id()
                              : e2[p.right].external_id()});
      }
      WriteCsvFile(out_path, rows);
      std::printf("Wrote %zu retained pairs to %s\n",
                  result.retained_indices.size(), out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
