// Shared flag-parsing helpers for every gsmb_cli subcommand.
//
// Before the facade each mode of the CLI carried its own copies of the
// enum-parsing helpers and its own exit-on-error convention. Everything
// here returns gsmb::Status/Result instead of exiting, names the offending
// flag in every message, and is shared by `run`, `explain`, `serve` and the
// legacy no-subcommand path — one parser, one diagnostic style.

#ifndef GSMB_TOOLS_CLI_PARSE_H_
#define GSMB_TOOLS_CLI_PARSE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gsmb/job_spec.h"
#include "gsmb/status.h"

namespace gsmb::cli {

/// A forward cursor over argv tokens.
class ArgStream {
 public:
  ArgStream(int argc, char** argv, int begin);
  explicit ArgStream(std::vector<std::string> args)
      : args_(std::move(args)) {}

  bool Done() const { return pos_ >= args_.size(); }
  /// The current token, advancing past it.
  const std::string& Take();
  /// The value of `flag` (the next token); errors when argv ends first.
  Result<std::string> Value(const std::string& flag);

 private:
  std::vector<std::string> args_;
  size_t pos_ = 0;
};

/// Strict non-negative integer: every character a digit, fits uint64_t.
/// (std::stoull alone would accept "-1" by wrapping modulo 2^64.)
Result<uint64_t> ParseCount(const std::string& flag, const std::string& text);

/// Strict finite double: the whole token must parse (std::stod alone would
/// silently accept "0.8abc" and inf/nan).
Result<double> ParseDouble(const std::string& flag, const std::string& text);

/// Loads `--config` spec files before any other flag applies, so flags
/// merge OVER the file — and the file merges over whatever mode-specific
/// defaults the caller pre-seeded into `spec` (absent keys keep them).
/// Scans `args`, loads at most one spec file, sets `*loaded` when one was,
/// and returns the remaining flags in order.
Result<std::vector<std::string>> ExtractConfig(const std::vector<std::string>& args,
                                               JobSpec* spec,
                                               bool* loaded = nullptr);

enum class FlagOutcome {
  kNotMine,  ///< not a shared pipeline flag; caller tries its own table
  kHandled,
};

/// Applies one of the pipeline flags every subcommand understands —
/// --pruning, --classifier, --features, --labels, --seed, --threads — to
/// the spec. Diagnostics are flag-qualified ("--pruning: unknown ...").
Result<FlagOutcome> ApplySharedFlag(const std::string& flag, ArgStream& args,
                                    JobSpec* spec);

}  // namespace gsmb::cli

#endif  // GSMB_TOOLS_CLI_PARSE_H_
