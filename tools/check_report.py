#!/usr/bin/env python3
"""Validates gsmb_cli --report-out provenance reports.

Usage:
    check_report.py report.json [more_reports.json ...]

Asserts each document is a well-formed gsmb run report
(schema "gsmb.run_report") or sweep report ("gsmb.sweep_report"):
schema/schema_version tags, the canonical spec object, a provenance
section whose digests are 16-char lowercase hex with a consistent
retained count, effectiveness metrics in range, the execution section
with its timing breakdown, and the environment stamp. Sweep reports are
checked variant by variant (failed variants carry label/ok/error only).

Exit status: 0 and "report OK" per file on success, 1 with a diagnostic
otherwise, 2 on usage errors.
"""

import json
import sys

RUN_SCHEMA = "gsmb.run_report"
SWEEP_SCHEMA = "gsmb.sweep_report"
SCHEMA_VERSION = 1

HEX_DIGEST_LEN = 16
HEX_DIGITS = set("0123456789abcdef")

SPEC_KEYS = ("version", "dataset", "blocking", "features", "classifier",
             "pruning", "training", "execution")
METRIC_KEYS = ("pc", "pq", "f1", "true_positives", "retained")
EXECUTION_KEYS = ("backend", "shards_used", "num_blocks", "num_candidates",
                  "training_size", "timings")
TIMING_KEYS = ("blocking_seconds", "generate_seconds", "feature_seconds",
               "train_seconds", "classify_seconds", "prune_seconds",
               "total_seconds")
ENVIRONMENT_KEYS = ("compiler", "platform", "arch", "assertions",
                    "spec_version")


def fail(message):
    print("check_report: %s" % message)
    return 1


def is_hex_digest(value):
    return (isinstance(value, str) and len(value) == HEX_DIGEST_LEN
            and set(value) <= HEX_DIGITS)


def check_spec(where, spec):
    if not isinstance(spec, dict):
        return fail("%s: spec is not an object" % where)
    for key in SPEC_KEYS:
        if key not in spec:
            return fail("%s: spec lacks %r" % (where, key))
    return 0


def check_provenance(where, doc):
    """Returns (status, retained_count); status != 0 means failed."""
    prov = doc.get("provenance")
    if not isinstance(prov, dict):
        return fail("%s: provenance section missing" % where), None
    for key in ("dataset_fingerprint", "retained_digest"):
        if not is_hex_digest(prov.get(key)):
            return fail("%s: provenance.%s is not a %d-char hex digest"
                        % (where, key, HEX_DIGEST_LEN)), None
    # prepared_digest is optional: the serving backend never builds the
    # global blocked representation, so its reports omit the key.
    if "prepared_digest" in prov and not is_hex_digest(
            prov["prepared_digest"]):
        return fail("%s: provenance.prepared_digest is not a %d-char hex "
                    "digest" % (where, HEX_DIGEST_LEN)), None
    count = prov.get("retained_count")
    if not isinstance(count, int) or count < 0:
        return fail("%s: provenance.retained_count is not a non-negative "
                    "integer" % where), None
    return 0, count


def check_metrics(where, doc, retained_count):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail("%s: metrics section missing" % where)
    for key in METRIC_KEYS:
        if key not in metrics:
            return fail("%s: metrics lacks %r" % (where, key))
    for key in ("pc", "pq", "f1"):
        value = metrics[key]
        if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
            return fail("%s: metrics.%s = %r out of [0, 1]"
                        % (where, key, value))
    if metrics["retained"] != retained_count:
        return fail("%s: metrics.retained (%r) != provenance.retained_count "
                    "(%r)" % (where, metrics["retained"], retained_count))
    if metrics["true_positives"] > metrics["retained"]:
        return fail("%s: more true positives than retained pairs" % where)
    return 0


def check_execution(where, doc):
    execution = doc.get("execution")
    if not isinstance(execution, dict):
        return fail("%s: execution section missing" % where)
    for key in EXECUTION_KEYS:
        if key not in execution:
            return fail("%s: execution lacks %r" % (where, key))
    timings = execution["timings"]
    if not isinstance(timings, dict):
        return fail("%s: execution.timings is not an object" % where)
    for key in TIMING_KEYS:
        value = timings.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            return fail("%s: execution.timings.%s = %r is not a non-negative "
                        "number" % (where, key, value))
    return 0


def check_environment(where, doc):
    env = doc.get("environment")
    if not isinstance(env, dict):
        return fail("%s: environment section missing" % where)
    for key in ENVIRONMENT_KEYS:
        if key not in env:
            return fail("%s: environment lacks %r" % (where, key))
    return 0


def check_run_body(where, doc):
    """The sections a run report and a successful sweep variant share."""
    status = check_spec(where, doc.get("spec"))
    if status:
        return status
    status, count = check_provenance(where, doc)
    if status:
        return status
    status = check_metrics(where, doc, count)
    if status:
        return status
    return check_execution(where, doc)


def check_run_report(path, doc):
    status = check_run_body(path, doc)
    if status:
        return status
    status = check_environment(path, doc)
    if status:
        return status
    print("report OK: %s (run, retained %d)"
          % (path, doc["provenance"]["retained_count"]))
    return 0


def check_sweep_report(path, doc):
    status = check_spec("%s: base_spec" % path, doc.get("base_spec"))
    if status:
        return status
    variants = doc.get("variants")
    if not isinstance(variants, list) or not variants:
        return fail("%s: variants missing or empty" % path)
    ok_count = 0
    for index, variant in enumerate(variants):
        label = variant.get("label")
        where = "%s: variant %r" % (path, label if label else index)
        if not isinstance(label, str) or not label:
            return fail("%s: label missing" % where)
        if not isinstance(variant.get("ok"), bool):
            return fail("%s: ok flag missing" % where)
        if not variant["ok"]:
            if not isinstance(variant.get("error"), str):
                return fail("%s: failed variant lacks error" % where)
            continue
        status = check_run_body(where, variant)
        if status:
            return status
        ok_count += 1
    sweep = doc.get("sweep")
    if not isinstance(sweep, dict) or "grid_size" not in sweep:
        return fail("%s: sweep stats section missing" % path)
    status = check_environment(path, doc)
    if status:
        return status
    print("report OK: %s (sweep, %d/%d variants ok)"
          % (path, ok_count, len(variants)))
    return 0


def check_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as error:
        return fail("%s: %s" % (path, error))
    if not isinstance(doc, dict):
        return fail("%s: document is not an object" % path)
    if doc.get("schema_version") != SCHEMA_VERSION:
        return fail("%s: schema_version %r != %d"
                    % (path, doc.get("schema_version"), SCHEMA_VERSION))
    schema = doc.get("schema")
    if schema == RUN_SCHEMA:
        return check_run_report(path, doc)
    if schema == SWEEP_SCHEMA:
        return check_sweep_report(path, doc)
    return fail("%s: unknown schema %r" % (path, schema))


def main(argv):
    paths = argv[1:]
    if not paths:
        print(__doc__)
        return 2
    for path in paths:
        status = check_report(path)
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
