// Lint fixture: nondeterministic randomness outside util/random.
// MUST trip raw-random (and only that rule).
#include <cstdlib>
#include <random>

int NoisySample() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<int>(engine()) + rand();
}
