// Lint fixture: raw process/socket calls outside src/dist//tools//tests.
// MUST trip raw-process (and only that rule).
#include <unistd.h>

#include <cstdlib>

int SpawnHelperInLibraryCode(const char* binary) {
  const pid_t pid = fork();
  if (pid == 0) {
    char* const argv[] = {const_cast<char*>(binary), nullptr};
    execv(binary, argv);
    _exit(127);
  }
  std::system("helper --cleanup");
  return static_cast<int>(pid);
}
