// Lint fixture: the sanctioned version of every banned pattern. MUST be
// clean under all six rules.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <unordered_map>
#include <vector>

void PutU32(std::ostream& out, uint32_t v);
void PutF64(std::ostream& out, double v);

namespace gsmb {
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);
}

// Collect-then-sort before emitting: deterministic bytes.
void WriteAggregatesSorted(
    std::ostream& out,
    const std::unordered_map<uint32_t, double>& aggregates) {
  std::vector<uint32_t> ids;
  ids.reserve(aggregates.size());
  for (const auto& [id, value] : aggregates) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const uint32_t id : ids) {
    PutU32(out, id);
    PutF64(out, aggregates.at(id));
  }
}

// Order-insensitive fold over an unordered container: fine without a sort.
double TotalOf(const std::unordered_map<uint32_t, double>& aggregates) {
  double total = 0.0;
  for (const auto& [id, value] : aggregates) total += value;
  return total;
}

// Per-chunk slots folded in chunk order: deterministic for any thread
// count (lambda-local accumulators are fine too).
double SumChunked(const std::vector<double>& values,
                  const std::vector<size_t>& chunk_of, size_t num_chunks,
                  size_t num_threads) {
  std::vector<double> slots(num_chunks, 0.0);
  gsmb::ParallelFor(values.size(), num_threads,
                    [&](size_t begin, size_t end) {
                      double local = 0.0;
                      for (size_t i = begin; i < end; ++i) {
                        local += values[i];
                        slots[chunk_of[i]] += values[i];
                      }
                      (void)local;
                    });
  double total = 0.0;
  for (size_t c = 0; c < num_chunks; ++c) total += slots[c];
  return total;
}
