// Lint fixture: banned patterns carrying the escape hatch. MUST be clean —
// every hit is waived by a gsmb-lint marker.
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <thread>
#include <unordered_map>

void PutU32(std::ostream& out, uint32_t v);

void Waived(std::ostream& out,
            const std::unordered_map<uint32_t, double>& aggregates) {
  // Rationale: demo of the line-level escape hatch.
  for (const auto& [id, value] : aggregates) {  // gsmb-lint: allow(unordered-iteration-into-output)
    PutU32(out, id);
  }
  int jitter = rand();  // gsmb-lint: allow(raw-random)
  (void)jitter;
  // gsmb-lint: allow(raw-thread) — marker on the preceding line also works.
  std::thread t([] {});
  t.join();
  // Rationale: a crash-path last-resort message may use the real stream.
  std::cerr << "fatal\n";  // gsmb-lint: allow(raw-console)
}
