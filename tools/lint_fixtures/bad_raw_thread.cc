// Lint fixture: hand-rolled threading outside util/.
// MUST trip raw-thread (and only that rule).
#include <thread>
#include <vector>

void FanOut(std::vector<int>* out) {
  std::thread worker([out] { out->push_back(1); });
  worker.join();
#pragma omp parallel for
  for (int i = 0; i < 4; ++i) {
    (void)i;
  }
}
