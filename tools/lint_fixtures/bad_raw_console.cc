// Lint fixture: library code writing to the process streams.
// MUST trip raw-console (and only that rule).
#include <iostream>

void ReportProgress(int done, int total) {
  std::cout << "progress " << done << "/" << total << "\n";
  if (done > total) std::cerr << "impossible progress\n";
}
