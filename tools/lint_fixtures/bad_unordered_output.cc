// Lint fixture: iterating an unordered_map straight into snapshot bytes.
// MUST trip unordered-iteration-into-output (and only that rule).
#include <cstdint>
#include <ostream>
#include <unordered_map>

void PutU32(std::ostream& out, uint32_t v);
void PutF64(std::ostream& out, double v);

void WriteAggregates(std::ostream& out,
                     const std::unordered_map<uint32_t, double>& aggregates) {
  for (const auto& [id, value] : aggregates) {
    PutU32(out, id);
    PutF64(out, value);
  }
}
