// Lint fixture: a shared float accumulator folded inside a ParallelFor
// worker lambda. MUST trip float-reduction (and only that rule).
#include <cstddef>
#include <vector>

namespace gsmb {
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);
}

double SumAll(const std::vector<double>& values, size_t num_threads) {
  double total = 0.0;
  gsmb::ParallelFor(values.size(), num_threads,
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        total += values[i];
                      }
                    });
  return total;
}
