// Lint fixture: a raw clock read outside src/obs//src/util//bench.
// MUST trip raw-clock (and only that rule).
#include <chrono>
#include <ctime>

double AdHocPhaseSeconds() {
  const auto begin = std::chrono::steady_clock::now();
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count() +
         static_cast<double>(ts.tv_sec);
}
