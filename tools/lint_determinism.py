#!/usr/bin/env python3
"""Determinism linter for the gsmb tree.

The repo's headline guarantee is that retained pairs are bit-identical
across executors, thread counts and shard counts. The compiler cannot see
that contract, and the class of bug that breaks it is always one of a
handful of source patterns. This linter rejects those patterns at review
time instead of waiting for a flaky paper_shape run:

  unordered-iteration-into-output
      Iterating a std::unordered_map/std::unordered_set directly into an
      output sink (snapshot bytes, CSV rows, retained-pair vectors).
      Hash-table iteration order depends on insertion history, seed and
      libstdc++ version; anything written in that order is
      nondeterministic. Collect-then-sort (a std::sort within the next
      few lines) is the sanctioned fix and is recognised.

  raw-random
      rand()/srand(), std::random_device, time-seeded engines, or a bare
      std::mt19937/std::default_random_engine outside src/util/random*.
      All randomness must flow through util/random's seeded Rng so a run
      is reproducible from its JobSpec seed.

  raw-thread
      std::thread or `#pragma omp` outside src/util/ (tests are exempt:
      stress tests deliberately race components with bare threads).
      Hand-rolled threading bypasses ThreadPool/ParallelFor and with them
      the DeterministicChunks merge discipline.

  float-reduction
      `x += ...` / `x -= ...` on a float/double declared OUTSIDE a
      ParallelFor worker lambda but modified inside it. FP addition is
      not associative, so a shared accumulator folded in worker order
      gives different bits on different thread counts. Reductions must
      write per-chunk slots and be folded in chunk order (see
      DeterministicChunks in util/thread_pool.h).

  raw-clock
      std::chrono (or clock_gettime/gettimeofday) outside the sanctioned
      clock owners: src/obs/ (the telemetry subsystem), src/util/
      (Stopwatch) and bench/ (benchmarks time themselves by design).
      Scattered clock reads become scattered timing side channels that
      leak into output ordering decisions and make perf numbers
      incomparable; time pipeline phases with obs::ScopedPhase /
      GSMB_SPAN or a util/stopwatch.h Stopwatch instead.

  raw-console
      std::cout/std::cerr/std::clog inside the library proper (src/ and
      include/). Library code must not write to the process streams: ad
      hoc prints interleave nondeterministically across threads, corrupt
      machine-read stdout (reports, explain JSON, retained CSVs piped
      through the CLI) and bypass the structured event log. Emit
      GSMB_LOG_* events (gsmb/log.h) instead; tools, benchmarks,
      examples and tests own their streams and are exempt.

  raw-process
      fork()/exec*/system()/popen()/posix_spawn()/socket() outside the
      sanctioned process owners: src/dist/ (the distributed execution
      tier), tools/ and tests/. A library that silently spawns processes
      or opens sockets is impossible to reason about for determinism
      (child scheduling, environment inheritance, network timing) and
      for sandboxing; all process fan-out must flow through the
      coordinator in src/dist/.

Escape hatch: the marker

    // gsmb-lint: allow(<rule>)

on the flagged line or the line directly above it suppresses that rule
there; a marker whose line also contains the word "file-wide" waives the
rule for the whole file. Use it with a rationale comment; the reviewer
sees the marker.

Usage:
    lint_determinism.py [--root DIR] [paths...]   # lint tree or files
    lint_determinism.py --self-test               # run on the fixtures

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = (
    "unordered-iteration-into-output",
    "raw-random",
    "raw-thread",
    "float-reduction",
    "raw-clock",
    "raw-console",
    "raw-process",
)

# Directories scanned by default, relative to the repo root.
DEFAULT_DIRS = ("src", "include", "tools", "examples", "bench", "tests")

SOURCE_EXTENSIONS = (".cc", ".h")

ALLOW_RE = re.compile(r"gsmb-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

# ---------------------------------------------------------------------------
# Helpers


def strip_strings_and_comments(line):
    """Blanks out string/char literals and // comments so patterns inside
    them never match (the allow() marker is extracted separately)."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in "\"'":
            in_string = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line_no, self.rule,
                                   self.message)


def allowed_rules(raw_lines):
    """Maps line number (1-based) -> set of rules allowed on that line;
    the key 0 holds file-wide allows (markers on comment-only lines
    before any code, or explicitly labelled file-wide)."""
    per_line = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        per_line.setdefault(idx, set()).update(rules)
        if "file-wide" in line:
            # An explicit file-wide waiver (e.g. in a stress test that
            # races components on purpose): applies to the whole file.
            per_line.setdefault(0, set()).update(rules)
    return per_line


def is_allowed(allow_map, line_no, rule):
    if rule in allow_map.get(0, set()):
        return True
    # The marker may sit on the flagged line or the line just above it.
    return (rule in allow_map.get(line_no, set())
            or rule in allow_map.get(line_no - 1, set()))


# ---------------------------------------------------------------------------
# Rule: unordered-iteration-into-output

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{]*>\s*[&*]?\s*(\w+)\s*[;={(,)]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*\*?([A-Za-z_][\w.\->]*)\s*\)")
OUTPUT_SINK_RE = re.compile(
    r"\bPut(?:U8|U32|U64|F64|String|Bytes)\b|<<|\bWriteRow\b|\bfprintf\b"
    r"|\.write\s*\(|\bAppendRow\b")
SORT_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")
# Lines after the loop head scanned for a sink / a sanitising sort.
BODY_WINDOW = 8
SORT_WINDOW = 14


def collect_unordered_names(tree_lines_by_path):
    """All identifiers declared anywhere in the scanned set with an
    unordered container type — members included, so `shard.aggregates`
    in one file is recognised via session.h's declaration."""
    names = set()
    for lines in tree_lines_by_path.values():
        for line in lines:
            code = strip_strings_and_comments(line)
            for m in UNORDERED_DECL_RE.finditer(code):
                names.add(m.group(1))
    return names


def check_unordered_iteration(path, raw_lines, allow_map, unordered_names,
                              findings):
    rule = "unordered-iteration-into-output"
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        target = m.group(1)
        # `obj.member`, `obj->member` or plain `name`: match the last
        # component against the declared-unordered identifiers.
        leaf = re.split(r"\.|->", target)[-1]
        if leaf not in unordered_names:
            continue
        body = [
            strip_strings_and_comments(raw_lines[j])
            for j in range(idx, min(idx + BODY_WINDOW, len(raw_lines)))
        ]
        if not any(OUTPUT_SINK_RE.search(b) for b in body):
            continue  # folds into an order-insensitive value: fine
        lookahead = [
            strip_strings_and_comments(raw_lines[j])
            for j in range(idx, min(idx + SORT_WINDOW, len(raw_lines)))
        ]
        if any(SORT_RE.search(b) for b in lookahead):
            continue  # collect-then-sort: sanctioned
        if is_allowed(allow_map, idx, rule):
            continue
        findings.append(
            Finding(
                path, idx, rule,
                "range-for over unordered container '%s' feeds an output "
                "sink; hash order is nondeterministic — collect keys, "
                "std::sort, then emit" % target))


# ---------------------------------------------------------------------------
# Rule: raw-random

RAW_RANDOM_PATTERNS = (
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::default_random_engine\b"),
     "std::default_random_engine"),
    (re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?)\b"),
     "bare standard engine"),
    (re.compile(r"seed\s*\(\s*time\s*\(|\(\s*time\s*\(\s*(?:NULL|nullptr|0)"),
     "time-based seed"),
)
RANDOM_EXEMPT_RE = re.compile(r"(^|/)src/util/random\.(cc|h)$|(^|/)util/random\.(cc|h)$")


def check_raw_random(path, raw_lines, allow_map, findings):
    rule = "raw-random"
    if RANDOM_EXEMPT_RE.search(path.replace(os.sep, "/")):
        return
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        for pattern, what in RAW_RANDOM_PATTERNS:
            if pattern.search(code) and not is_allowed(allow_map, idx, rule):
                findings.append(
                    Finding(
                        path, idx, rule,
                        "%s outside util/random: all randomness must be "
                        "reproducible from the JobSpec seed via gsmb::Rng"
                        % what))
                break


# ---------------------------------------------------------------------------
# Rule: raw-thread

RAW_THREAD_RE = re.compile(r"\bstd::thread\b|\bstd::jthread\b")
OMP_RE = re.compile(r"#\s*pragma\s+omp\b")


def thread_exempt(path):
    p = path.replace(os.sep, "/")
    return "/util/" in p or p.startswith("util/") or "/tests/" in p \
        or p.startswith("tests/")


def check_raw_thread(path, raw_lines, allow_map, findings):
    rule = "raw-thread"
    if thread_exempt(path):
        return
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        if (RAW_THREAD_RE.search(code) or OMP_RE.search(code)) \
                and not is_allowed(allow_map, idx, rule):
            findings.append(
                Finding(
                    path, idx, rule,
                    "raw threading outside util/: use ThreadPool/"
                    "ParallelFor so chunking stays deterministic"))


# ---------------------------------------------------------------------------
# Rule: float-reduction

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=|;|\{)")
PARALLEL_FOR_RE = re.compile(r"\bParallelFor\s*\(")
LAMBDA_RE = re.compile(r"\[[^\]]*&[^\]]*\]")
COMPOUND_ASSIGN_RE = re.compile(r"(?<![\w.])([A-Za-z_]\w*)\s*[+\-]=")


def check_float_reduction(path, raw_lines, allow_map, findings):
    rule = "float-reduction"
    code_lines = [strip_strings_and_comments(l) for l in raw_lines]

    for idx, code in enumerate(code_lines, start=1):
        if not PARALLEL_FOR_RE.search(code):
            continue
        # Find the by-reference lambda opening on this or the next lines,
        # then walk its braces to delimit the worker body.
        open_line = None
        for j in range(idx - 1, min(idx + 2, len(code_lines))):
            if LAMBDA_RE.search(code_lines[j]) and "{" in code_lines[j]:
                open_line = j
                break
        if open_line is None:
            continue
        depth = 0
        body_start = open_line
        body_end = open_line
        started = False
        for j in range(open_line, len(code_lines)):
            depth += code_lines[j].count("{") - code_lines[j].count("}")
            if not started and "{" in code_lines[j]:
                started = True
            if started and depth <= 0:
                body_end = j
                break
        else:
            body_end = len(code_lines) - 1

        # Floats declared inside the lambda are thread-local: fine.
        local_floats = set()
        for j in range(body_start, body_end + 1):
            for m in FLOAT_DECL_RE.finditer(code_lines[j]):
                local_floats.add(m.group(1))
        # Floats declared before the lambda in this file are candidates
        # for a shared captured accumulator.
        outer_floats = set()
        for j in range(0, body_start):
            for m in FLOAT_DECL_RE.finditer(code_lines[j]):
                outer_floats.add(m.group(1))

        for j in range(body_start, body_end + 1):
            line_no = j + 1
            line_code = code_lines[j]
            for m in COMPOUND_ASSIGN_RE.finditer(line_code):
                name = m.group(1)
                if name in local_floats or name not in outer_floats:
                    continue
                # Indexed writes (per-chunk slots like sums[c] += ...)
                # are the sanctioned pattern; COMPOUND_ASSIGN_RE already
                # rejects them via its lookbehind, but a subscript between
                # name and operator (name[i] +=) still reaches here.
                if "[" in line_code[m.start():m.end()]:
                    continue
                if is_allowed(allow_map, line_no, rule):
                    continue
                findings.append(
                    Finding(
                        path, line_no, rule,
                        "float accumulator '%s' shared across ParallelFor "
                        "workers: FP addition is not associative, so the "
                        "result depends on the thread count — accumulate "
                        "into per-chunk slots and fold them in chunk order "
                        "(DeterministicChunks)" % name))


# ---------------------------------------------------------------------------
# Rule: raw-clock

RAW_CLOCK_PATTERNS = (
    (re.compile(r"\bstd::chrono\b"), "std::chrono"),
    (re.compile(r"\b(?:steady|system|high_resolution)_clock\b"),
     "standard clock type"),
    (re.compile(r"\bclock_gettime\s*\(|\bgettimeofday\s*\("),
     "POSIX clock call"),
)


def clock_exempt(path):
    p = path.replace(os.sep, "/")
    # The sanctioned clock owners: the telemetry subsystem, util/ (the
    # Stopwatch), and benchmarks (which time themselves by design).
    for d in ("obs", "util", "bench"):
        if "/%s/" % d in p or p.startswith(d + "/"):
            return True
    return False


def check_raw_clock(path, raw_lines, allow_map, findings):
    rule = "raw-clock"
    if clock_exempt(path):
        return
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        for pattern, what in RAW_CLOCK_PATTERNS:
            if pattern.search(code) and not is_allowed(allow_map, idx, rule):
                findings.append(
                    Finding(
                        path, idx, rule,
                        "%s outside src/obs//src/util//bench: time phases "
                        "with obs::ScopedPhase or GSMB_SPAN (gsmb/"
                        "telemetry.h), or a util/stopwatch.h Stopwatch"
                        % what))
                break


# ---------------------------------------------------------------------------
# Rule: raw-console

RAW_CONSOLE_RE = re.compile(r"\bstd::(?:cout|cerr|clog)\b")


def console_scoped(path):
    p = path.replace(os.sep, "/")
    # Only the library proper: tools, benchmarks, examples and tests own
    # their process streams by design. Fixtures pass through lint_files
    # with a tools/-relative path, so scope by prefix, not substring.
    return p.startswith(("src/", "include/")) or "/lint_fixtures/" in p \
        or p.startswith("lint_fixtures/")


def check_raw_console(path, raw_lines, allow_map, findings):
    rule = "raw-console"
    if not console_scoped(path):
        return
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        if RAW_CONSOLE_RE.search(code) and not is_allowed(allow_map, idx,
                                                          rule):
            findings.append(
                Finding(
                    path, idx, rule,
                    "std::cout/std::cerr in library code: process streams "
                    "interleave across threads and corrupt machine-read "
                    "stdout — emit a GSMB_LOG_* event (gsmb/log.h) instead"))


# ---------------------------------------------------------------------------
# Rule: raw-process

RAW_PROCESS_PATTERNS = (
    (re.compile(r"(?<![\w:])v?fork\s*\("), "fork()"),
    (re.compile(r"(?<![\w:])exec[lv][pe]{0,2}\s*\("), "exec*()"),
    (re.compile(r"\bstd::system\s*\(|(?<![\w.:])system\s*\("), "system()"),
    (re.compile(r"(?<![\w:])popen\s*\("), "popen()"),
    (re.compile(r"\bposix_spawnp?\s*\("), "posix_spawn()"),
    (re.compile(r"(?<![\w:])socket\s*\("), "socket()"),
)


def process_exempt(path):
    p = path.replace(os.sep, "/")
    # The sanctioned process owners: the distributed tier, the CLI /
    # developer tools, and tests (which exercise the fork paths). Lint
    # fixtures stay in scope so the self-test can trip the rule.
    if "/lint_fixtures/" in p or p.startswith("lint_fixtures/"):
        return False
    for d in ("src/dist", "tools", "tests"):
        if "/%s/" % d in p or p.startswith(d + "/"):
            return True
    return False


def check_raw_process(path, raw_lines, allow_map, findings):
    rule = "raw-process"
    if process_exempt(path):
        return
    for idx, line in enumerate(raw_lines, start=1):
        code = strip_strings_and_comments(line)
        for pattern, what in RAW_PROCESS_PATTERNS:
            if pattern.search(code) and not is_allowed(allow_map, idx, rule):
                findings.append(
                    Finding(
                        path, idx, rule,
                        "%s outside src/dist//tools//tests: library code "
                        "must not spawn processes or open sockets — route "
                        "process fan-out through the coordinator in "
                        "src/dist/ (gsmb/remote.h)" % what))
                break


# ---------------------------------------------------------------------------
# Driver

def lint_files(paths, root):
    """Returns the finding list for `paths` (absolute or root-relative)."""
    tree = {}
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                tree[os.path.relpath(full, root)] = f.read().splitlines()
        except OSError as e:
            raise SystemExit("lint_determinism: cannot read %s: %s"
                             % (full, e))

    unordered_names = collect_unordered_names(tree)
    findings = []
    for rel, raw_lines in sorted(tree.items()):
        allow_map = allowed_rules(raw_lines)
        check_unordered_iteration(rel, raw_lines, allow_map, unordered_names,
                                  findings)
        check_raw_random(rel, raw_lines, allow_map, findings)
        check_raw_thread(rel, raw_lines, allow_map, findings)
        check_float_reduction(rel, raw_lines, allow_map, findings)
        check_raw_clock(rel, raw_lines, allow_map, findings)
        check_raw_console(rel, raw_lines, allow_map, findings)
        check_raw_process(rel, raw_lines, allow_map, findings)
    return findings


def default_paths(root):
    out = []
    for d in DEFAULT_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


# ---------------------------------------------------------------------------
# Self-test over the fixtures

def self_test(root):
    """Runs the linter over tools/lint_fixtures: each bad_<rule>.cc must
    trip exactly its rule; good.cc and allowed.cc must be clean."""
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print("self-test: fixture directory missing: %s" % fixtures)
        return 2

    failures = []

    def expect(name, expected_rules):
        path = os.path.join(fixtures, name)
        findings = lint_files([path], root)
        got = sorted({f.rule for f in findings})
        if got != sorted(expected_rules):
            failures.append("%s: expected rules %s, got %s (%s)"
                            % (name, sorted(expected_rules), got,
                               "; ".join(str(f) for f in findings) or "clean"))

    expect("bad_unordered_output.cc", ["unordered-iteration-into-output"])
    expect("bad_raw_random.cc", ["raw-random"])
    expect("bad_raw_thread.cc", ["raw-thread"])
    expect("bad_float_reduction.cc", ["float-reduction"])
    expect("bad_raw_clock.cc", ["raw-clock"])
    expect("bad_raw_console.cc", ["raw-console"])
    expect("bad_raw_process.cc", ["raw-process"])
    expect("good.cc", [])
    expect("allowed.cc", [])

    if failures:
        print("self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("self-test passed: 7 bad fixtures tripped their rule, "
          "2 clean fixtures stayed clean")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="gsmb determinism linter (see module docstring)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: the whole tree)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixtures and verify each rule fires")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    if args.self_test:
        return self_test(root)

    paths = args.paths or default_paths(root)
    # Never lint the fixtures as part of the tree: they are bad on purpose.
    paths = [p for p in paths
             if "lint_fixtures" not in p.replace(os.sep, "/")]
    findings = lint_files(paths, root)
    for finding in findings:
        print(finding)
    if findings:
        print("\n%d finding(s). Fix the pattern or annotate the line with "
              "// gsmb-lint: allow(<rule>) plus a rationale." % len(findings))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
