#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and flag hot-path regressions.

Usage:
    bench_diff.py baseline.json current.json [--threshold 0.20] [--strict]

Prints a per-benchmark delta table over every numeric field the two files
share and flags benchmarks whose real_time — or peak RSS, for benchmarks
that report a `peak_rss_mb` user counter — regressed by more than the
threshold (default 20%). Other shared numeric fields (prep_ms, percentile
counters like query_p99_us, ...) are diffed for information only.
Benchmarks or fields present in only one file are reported but never
flagged, so newly-added telemetry keys don't fail a diff against an older
baseline. Emits GitHub Actions `::warning::` annotations so regressions
surface on the workflow run page; with --strict the exit code is 1 when
any regression is flagged (CI runs non-strict: shared runners are noisy,
so the diff is advisory).

One exception is never advisory: `retained_digest`, the provenance digest
of the retained pair set (gsmb/digest.h). Timings may drift with the
runner; the retained SET must not. A digest that changed between baseline
and current — on any benchmark both files report it for — exits 1 with or
without --strict.
"""

import argparse
import json
import sys

# Probes that exist only to carry a user counter (their real_time measures
# a single /proc read and jitters far beyond any threshold): their time is
# printed but never flagged; their counters are diffed like any other.
COUNTER_ONLY_BENCHMARKS = {"BM_ProcessPeakRss/iterations:1",
                           "BM_ProcessPeakRss"}

# The only fields whose regression is flagged; everything else numeric is
# informational.
FLAGGED_FIELDS = ("real_time", "peak_rss_mb")


def load_benchmarks(path):
    """name -> {field: float} over every numeric field of the row."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        fields = {}
        for key, value in bench.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            fields[key] = float(value)
        out[bench["name"]] = fields
    return out


def load_digests(path):
    """name -> retained_digest hex string, for rows that carry one."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        digest = bench.get("retained_digest")
        if isinstance(digest, str) and digest:
            out[bench["name"]] = digest
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression to flag on flagged fields")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds threshold")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    baseline_digests = load_digests(args.baseline)
    current_digests = load_digests(args.current)

    # The semantic gate runs first and is never advisory: a changed
    # retained-set digest is a correctness drift, not runner noise.
    # Digests only one side reports stay informational (new benchmark, or
    # a baseline predating digest emission).
    digest_mismatches = []
    for name in sorted(set(baseline_digests) & set(current_digests)):
        if baseline_digests[name] != current_digests[name]:
            digest_mismatches.append(name)
            print(f"::error title=retained-set drift::{name} retained_digest "
                  f"{baseline_digests[name]} -> {current_digests[name]}")

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            real = current[name].get("real_time", 0.0)
            print(f"{name:50s} {'-':>12s} {real:12.1f}     new")
            continue
        if name not in current:
            real = baseline[name].get("real_time", 0.0)
            print(f"{name:50s} {real:12.1f} {'-':>12s} removed")
            continue
        base_fields, cur_fields = baseline[name], current[name]
        # real_time leads the row; other shared fields indent under it.
        ordered = ["real_time"] + sorted(
            f for f in set(base_fields) | set(cur_fields) if f != "real_time")
        for field in ordered:
            base = base_fields.get(field)
            cur = cur_fields.get(field)
            label = name if field == "real_time" else "  " + field
            if base is None or cur is None:
                # A field only one side reports (e.g. a newly-added
                # percentile counter): informational, never flagged.
                side = "new field" if base is None else "removed field"
                known = cur if base is None else base
                print(f"{label:50s} {'-':>12s} {known:12.1f} {side:>13s}"
                      if base is None else
                      f"{label:50s} {known:12.1f} {'-':>12s} {side:>13s}")
                continue
            delta = (cur - base) / base if base > 0 else 0.0
            marker = ""
            if (field in FLAGGED_FIELDS and delta > args.threshold
                    and name not in COUNTER_ONLY_BENCHMARKS):
                marker = "  << REGRESSION"
                regressions.append((name, field, delta))
            print(f"{label:50s} {base:12.1f} {cur:12.1f} {delta:+7.1%}{marker}")

    if regressions:
        print()
        for name, metric, delta in regressions:
            print(f"::warning title=bench regression::{name} {metric} "
                  f"regressed {delta:+.1%} (threshold "
                  f"{args.threshold:.0%})")
        print(f"{len(regressions)} benchmark metric(s) regressed more than "
              f"{args.threshold:.0%}")
    else:
        print("\nno regressions above threshold")
    if digest_mismatches:
        print(f"{len(digest_mismatches)} benchmark(s) changed their "
              f"retained-set digest: {', '.join(digest_mismatches)}")
        return 1
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
