#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and flag hot-path regressions.

Usage:
    bench_diff.py baseline.json current.json [--threshold 0.20] [--strict]

Prints a per-benchmark delta table and flags every benchmark whose real_time
— or peak RSS, for benchmarks that report a `peak_rss_mb` user counter —
regressed by more than the threshold (default 20%). Benchmarks present in
only one file are reported but never flagged. Emits GitHub Actions
`::warning::` annotations so regressions surface on the workflow run page;
with --strict the exit code is 1 when any regression is flagged (CI runs
non-strict: shared runners are noisy, so the diff is advisory).
"""

import argparse
import json
import sys

# Probes that exist only to carry a user counter (their real_time measures
# a single /proc read and jitters far beyond any threshold): their time is
# printed but never flagged; their counters are diffed like any other.
COUNTER_ONLY_BENCHMARKS = {"BM_ProcessPeakRss/iterations:1",
                           "BM_ProcessPeakRss"}


def load_benchmarks(path):
    """name -> (real_time, peak_rss_mb or None)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        rss = bench.get("peak_rss_mb")
        out[bench["name"]] = (float(bench["real_time"]),
                              float(rss) if rss is not None else None)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative real_time regression to flag")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds threshold")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:50s} {'-':>12s} {current[name][0]:12.1f}     new")
            continue
        if name not in current:
            print(f"{name:50s} {baseline[name][0]:12.1f} {'-':>12s} removed")
            continue
        (base, base_rss), (cur, cur_rss) = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        marker = ""
        if delta > args.threshold and name not in COUNTER_ONLY_BENCHMARKS:
            marker = "  << REGRESSION"
            regressions.append((name, "real_time", delta))
        print(f"{name:50s} {base:12.1f} {cur:12.1f} {delta:+7.1%}{marker}")
        if base_rss is not None and cur_rss is not None:
            rss_delta = (cur_rss - base_rss) / base_rss if base_rss > 0 else 0.0
            rss_marker = ""
            if rss_delta > args.threshold:
                rss_marker = "  << RSS REGRESSION"
                regressions.append((name, "peak_rss_mb", rss_delta))
            print(f"{'  peak_rss_mb':50s} {base_rss:12.1f} {cur_rss:12.1f} "
                  f"{rss_delta:+7.1%}{rss_marker}")

    if regressions:
        print()
        for name, metric, delta in regressions:
            print(f"::warning title=bench regression::{name} {metric} "
                  f"regressed {delta:+.1%} (threshold "
                  f"{args.threshold:.0%})")
        print(f"{len(regressions)} benchmark metric(s) regressed more than "
              f"{args.threshold:.0%}")
        if args.strict:
            return 1
    else:
        print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
