#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and flag hot-path regressions.

Usage:
    bench_diff.py baseline.json current.json [--threshold 0.20] [--strict]

Prints a per-benchmark delta table and flags every benchmark whose real_time
regressed by more than the threshold (default 20%). Benchmarks present in
only one file are reported but never flagged. Emits GitHub Actions
`::warning::` annotations so regressions surface on the workflow run page;
with --strict the exit code is 1 when any regression is flagged (CI runs
non-strict: shared runners are noisy, so the diff is advisory).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative real_time regression to flag")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds threshold")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:50s} {'-':>12s} {current[name]:12.1f}     new")
            continue
        if name not in current:
            print(f"{name:50s} {baseline[name]:12.1f} {'-':>12s} removed")
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:50s} {base:12.1f} {cur:12.1f} {delta:+7.1%}{marker}")

    if regressions:
        print()
        for name, delta in regressions:
            print(f"::warning title=bench regression::{name} real_time "
                  f"regressed {delta:+.1%} (threshold "
                  f"{args.threshold:.0%})")
        print(f"{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}")
        if args.strict:
            return 1
    else:
        print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
