#!/usr/bin/env python3
"""Validates gsmb_cli --trace-out / --metrics-out artifacts.

Usage:
    check_trace.py [--serving] trace.json [metrics.json]

Asserts the trace is Chrome-trace JSON (chrome://tracing / Perfetto
loadable): a `traceEvents` array of complete events (`ph == "X"`) each
carrying name/ts/dur/pid/tid, whose span names cover every canonical
pipeline phase (--serving drops the `prepare` span from the required
set: a serving session blocks during its own refresh, so it has no
prepared handle and no prepare span). With a metrics file, additionally
asserts the registry export carries the pipeline counters as exact
integers.

Exit status: 0 and "trace OK" on success, 1 with a diagnostic otherwise.
"""

import json
import sys

CANONICAL_PHASES = {"prepare", "blocking", "pairs", "features", "train",
                    "classify", "prune"}
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")
REQUIRED_COUNTERS = ("pairs.generated", "pairs.retained")


def fail(message):
    print("check_trace: %s" % message)
    return 1


def check_trace(path, required_phases):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("%s: traceEvents missing or empty" % path)
    names = set()
    for event in events:
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                return fail("%s: event %r lacks %r" % (path, event, key))
        if event["ph"] != "X":
            return fail("%s: non-complete event %r" % (path, event))
        if event["dur"] < 0 or event["ts"] < 0:
            return fail("%s: negative time in %r" % (path, event))
        names.add(event["name"])
    missing = required_phases - names
    if missing:
        return fail("%s: canonical phase spans missing: %s"
                    % (path, ", ".join(sorted(missing))))
    print("trace OK: %d events, phases %s" % (
        len(events), ", ".join(sorted(names & CANONICAL_PHASES))))
    return 0


def check_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        return fail("%s: counters object missing" % path)
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            return fail("%s: counter %r missing" % (path, name))
        if not isinstance(counters[name], int):
            return fail("%s: counter %r is not an exact integer"
                        % (path, name))
    print("metrics OK: %d counters" % len(counters))
    return 0


def main(argv):
    args = argv[1:]
    required = set(CANONICAL_PHASES)
    if args and args[0] == "--serving":
        required.discard("prepare")
        args = args[1:]
    if len(args) not in (1, 2):
        print(__doc__)
        return 2
    status = check_trace(args[0], required)
    if status == 0 and len(args) == 2:
        status = check_metrics(args[1])
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
