#include "cli_parse.h"

#include <cmath>
#include <stdexcept>

namespace gsmb::cli {

ArgStream::ArgStream(int argc, char** argv, int begin) {
  for (int i = begin; i < argc; ++i) args_.emplace_back(argv[i]);
}

const std::string& ArgStream::Take() { return args_[pos_++]; }

Result<std::string> ArgStream::Value(const std::string& flag) {
  if (Done()) {
    return Status::InvalidArgument(flag + " needs a value");
  }
  return args_[pos_++];
}

Result<uint64_t> ParseCount(const std::string& flag, const std::string& text) {
  const bool all_digits =
      !text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos;
  if (all_digits) {
    try {
      return std::stoull(text);
    } catch (const std::exception&) {
      // out of range; fall through to the diagnostic
    }
  }
  return Status::InvalidArgument(flag + " expects a non-negative integer, got '" +
                                 text + "'");
}

Result<double> ParseDouble(const std::string& flag, const std::string& text) {
  try {
    size_t consumed = 0;
    const double parsed = std::stod(text, &consumed);
    if (consumed == text.size() && std::isfinite(parsed)) return parsed;
  } catch (const std::exception&) {
    // not a number at all; fall through to the diagnostic
  }
  return Status::InvalidArgument(flag + " expects a finite number, got '" +
                                 text + "'");
}

Result<std::vector<std::string>> ExtractConfig(
    const std::vector<std::string>& args, JobSpec* spec, bool* loaded) {
  std::vector<std::string> rest;
  bool have_config = false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--config") {
      rest.push_back(args[i]);
      continue;
    }
    if (have_config) {
      return Status::InvalidArgument(
          "--config given twice; merge your spec files into one");
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("--config needs a value");
    }
    // Merge over the caller's pre-seeded defaults: keys the file does not
    // name keep their current values.
    Result<JobSpec> from_file = JobSpec::FromFile(args[++i], *spec);
    if (!from_file.ok()) return from_file.status();
    *spec = *from_file;
    have_config = true;
  }
  if (loaded != nullptr) *loaded = have_config;
  return rest;
}

namespace {

/// Flag-qualified enum assignment: `*out = parse(value-of-flag)`.
template <typename T, typename ParseFn>
Status AssignEnum(const std::string& flag, ArgStream& args, ParseFn parse,
                  T* out) {
  Result<std::string> value = args.Value(flag);
  if (!value.ok()) return value.status();
  Result<T> parsed = parse(*value);
  if (!parsed.ok()) {
    return Status::InvalidArgument(flag + ": " + parsed.status().message());
  }
  *out = *parsed;
  return Status::Ok();
}

Status AssignCount(const std::string& flag, ArgStream& args, size_t* out) {
  Result<std::string> value = args.Value(flag);
  if (!value.ok()) return value.status();
  Result<uint64_t> parsed = ParseCount(flag, *value);
  if (!parsed.ok()) return parsed.status();
  *out = static_cast<size_t>(*parsed);
  return Status::Ok();
}

}  // namespace

Result<FlagOutcome> ApplySharedFlag(const std::string& flag, ArgStream& args,
                                    JobSpec* spec) {
  if (flag == "--pruning") {
    Status status =
        AssignEnum(flag, args, ParsePruningName, &spec->pruning.kind);
    if (!status.ok()) return status;
    return FlagOutcome::kHandled;
  }
  if (flag == "--classifier") {
    Status status =
        AssignEnum(flag, args, ParseClassifierName, &spec->classifier);
    if (!status.ok()) return status;
    return FlagOutcome::kHandled;
  }
  if (flag == "--features") {
    Status status =
        AssignEnum(flag, args, ParseFeatureSetName, &spec->features);
    if (!status.ok()) return status;
    return FlagOutcome::kHandled;
  }
  if (flag == "--labels") {
    Status status =
        AssignCount(flag, args, &spec->training.labels_per_class);
    if (!status.ok()) return status;
    return FlagOutcome::kHandled;
  }
  if (flag == "--seed") {
    Result<std::string> value = args.Value(flag);
    if (!value.ok()) return value.status();
    Result<uint64_t> parsed = ParseCount(flag, *value);
    if (!parsed.ok()) return parsed.status();
    spec->training.seed = *parsed;
    return FlagOutcome::kHandled;
  }
  if (flag == "--threads") {
    // 0 is stored as-is: it means "all hardware threads" and is resolved
    // at run time (ResolvedExecution), so an `explain`ed spec stays
    // portable across machines with different core counts.
    Status status =
        AssignCount(flag, args, &spec->execution.options.num_threads);
    if (!status.ok()) return status;
    return FlagOutcome::kHandled;
  }
  return FlagOutcome::kNotMine;
}

}  // namespace gsmb::cli
